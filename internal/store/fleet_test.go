package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestPutRawReplicatesVerbatim: PutRaw stores another store's object
// bytes unchanged, so a replica serves bytes identical to the original.
func TestPutRawReplicatesVerbatim(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := put(t, src, `{"workload":"labyrinth","scale":"small","htm":"P8","hints":"HinTM"}`, `{"cycles":7}`)
	_, raw, err := src.Get(key)
	if err != nil {
		t.Fatal(err)
	}

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.PutRaw(raw)
	if err != nil || got != key {
		t.Fatalf("PutRaw = %q, %v; want %q", got, err, key)
	}
	e, raw2, err := dst.Get(key)
	if err != nil || e == nil {
		t.Fatalf("replica Get: %v, %v", e, err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Errorf("replica bytes differ:\n%s\nvs\n%s", raw, raw2)
	}
	// The replica's index summarizes the request coordinates like a local
	// Put would.
	items, _ := dst.Select(Filter{Workload: "labyrinth", HTM: "P8"}, 0, 10)
	if len(items) != 1 || items[0].Key != key || items[0].Hints != "HinTM" {
		t.Errorf("replica index summary: %+v", items)
	}
	// Re-putting the same bytes keeps the sequence number.
	seq := items[0].Seq
	if _, err := dst.PutRaw(raw); err != nil {
		t.Fatal(err)
	}
	items, _ = dst.Select(Filter{}, 0, 10)
	if len(items) != 1 || items[0].Seq != seq {
		t.Errorf("re-put changed seq: %+v", items)
	}
}

// TestPutRawRejectsGarbage: bytes that are not a self-consistent object
// (wrong schema, key not the content address of the request) are refused.
func TestPutRawRejectsGarbage(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, data := range []string{
		`not json`,
		`{}`,
		`{"schema":"bogus","key":"00","request":{},"result":{}}`,
		// Right schema, mis-keyed: key is not the request's content address.
		`{"schema":"` + Schema + `","key":"` + Key([]byte(`{"a":1}`)) + `","request":{"a":2},"result":{}}`,
	} {
		if key, err := s.PutRaw([]byte(data)); err == nil {
			t.Errorf("PutRaw accepted %q as %s", data, key)
		}
	}
	if s.Len() != 0 {
		t.Errorf("rejected puts left %d entries", s.Len())
	}
}

// TestSelectFilterAndPagination exercises the index-backed listing.
func TestSelectFilterAndPagination(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reqs := []string{
		`{"workload":"labyrinth","scale":"small","htm":"P8","hints":"baseline"}`,
		`{"workload":"labyrinth","scale":"small","htm":"InfCap","hints":"baseline"}`,
		`{"workload":"vacation","scale":"small","htm":"P8","hints":"HinTM"}`,
	}
	for i, req := range reqs {
		put(t, s, req, `{"cycles":`+string(rune('1'+i))+`}`)
	}

	all, next := s.Select(Filter{}, 0, 10)
	if len(all) != 3 || next != 0 {
		t.Fatalf("unfiltered: %d items, next %d", len(all), next)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("Select not seq-ordered: %+v", all)
		}
	}

	if got, _ := s.Select(Filter{Workload: "vacation"}, 0, 10); len(got) != 1 || got[0].HTM != "P8" {
		t.Errorf("workload filter: %+v", got)
	}
	if got, _ := s.Select(Filter{HTM: "P8"}, 0, 10); len(got) != 2 {
		t.Errorf("htm filter: %+v", got)
	}
	if got, _ := s.Select(Filter{Workload: "labyrinth", HTM: "InfCap"}, 0, 10); len(got) != 1 {
		t.Errorf("combined filter: %+v", got)
	}
	if got, _ := s.Select(Filter{Workload: "nope"}, 0, 10); len(got) != 0 {
		t.Errorf("no-match filter: %+v", got)
	}

	// Pagination: page size 2 → cursor → final page, no overlap, no gap.
	page1, cursor := s.Select(Filter{}, 0, 2)
	if len(page1) != 2 || cursor == 0 {
		t.Fatalf("page1: %d items, cursor %d", len(page1), cursor)
	}
	page2, cursor2 := s.Select(Filter{}, cursor, 2)
	if len(page2) != 1 || cursor2 != 0 {
		t.Fatalf("page2: %d items, cursor %d", len(page2), cursor2)
	}
	seen := map[string]bool{}
	for _, it := range append(page1, page2...) {
		if seen[it.Key] {
			t.Fatalf("key %s in two pages", it.Key)
		}
		seen[it.Key] = true
	}
	if len(seen) != 3 {
		t.Errorf("crawl saw %d keys, want 3", len(seen))
	}
}

// TestIndexUpgradeRebuild: a version-1 index (no summaries) is rebuilt
// from object files on Open, and the summaries appear.
func TestIndexUpgradeRebuild(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := put(t, s, `{"workload":"labyrinth","scale":"small","htm":"P8","hints":"baseline"}`, `{"cycles":1}`)

	// Regress the on-disk index to version 1 with the summaries stripped.
	var doc indexDoc
	path := filepath.Join(dir, indexFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc.Version = 1
	for i := range doc.Entries {
		doc.Entries[i].Workload, doc.Entries[i].Scale, doc.Entries[i].HTM, doc.Entries[i].Hints = "", "", "", ""
	}
	regressed, _ := json.Marshal(doc)
	if err := os.WriteFile(path, regressed, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	items, _ := s2.Select(Filter{Workload: "labyrinth"}, 0, 10)
	if len(items) != 1 || items[0].Key != key || items[0].HTM != "P8" {
		t.Errorf("rebuilt index lacks summaries: %+v", items)
	}
}
