package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hintm/internal/obs"
)

func put(t *testing.T, s *Store, req, result string) string {
	t.Helper()
	key, err := s.Put(Entry{Request: json.RawMessage(req), Result: json.RawMessage(result)})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	return key
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := `{"workload":"vacation","seed":1}`
	key := put(t, s, req, `{"cycles":42}`)
	if key != Key([]byte(req)) {
		t.Errorf("Put key = %s, want content address of the request preimage", key)
	}
	e, raw, err := s.Get(key)
	if err != nil || e == nil {
		t.Fatalf("Get: entry=%v err=%v", e, err)
	}
	if string(e.Request) != req || string(e.Result) != `{"cycles":42}` {
		t.Errorf("round-trip mismatch: %+v", e)
	}
	if e.Schema != Schema || e.Key != key || e.Seq != 1 {
		t.Errorf("entry metadata wrong: %+v", e)
	}
	if !json.Valid(raw) || !bytes.Contains(raw, []byte(key)) {
		t.Errorf("raw bytes not a valid self-describing object: %q", raw)
	}

	// Raw serving bytes are stable across reads.
	_, raw2, _ := s.Get(key)
	if !bytes.Equal(raw, raw2) {
		t.Error("two Gets returned different bytes")
	}
}

func TestMissIsNotAnError(t *testing.T) {
	s, _ := Open(t.TempDir())
	e, raw, err := s.Get(strings.Repeat("ab", 32))
	if e != nil || raw != nil || err != nil {
		t.Fatalf("miss: got (%v, %q, %v), want (nil, nil, nil)", e, raw, err)
	}
}

func TestReopenRecalls(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := put(t, s, `{"a":1}`, `{"r":1}`)
	put(t, s, `{"a":2}`, `{"r":2}`)

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 || !s2.Contains(key) {
		t.Fatalf("reopened store lost entries: len=%d", s2.Len())
	}
	e, _, _ := s2.Get(key)
	if e == nil || string(e.Result) != `{"r":1}` {
		t.Fatalf("reopened Get = %+v", e)
	}
}

func TestPutOverwriteKeepsSeq(t *testing.T) {
	s, _ := Open(t.TempDir())
	put(t, s, `{"a":1}`, `{"r":1}`)
	key := put(t, s, `{"a":1}`, `{"r":9}`)
	e, _, _ := s.Get(key)
	if e.Seq != 1 || string(e.Result) != `{"r":9}` {
		t.Errorf("overwrite: seq=%d result=%s, want seq 1 and new result", e.Seq, e.Result)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after overwrite, want 1", s.Len())
	}
}

func TestListInsertionOrderAndGC(t *testing.T) {
	s, _ := Open(t.TempDir())
	k1 := put(t, s, `{"a":1}`, `{}`)
	k2 := put(t, s, `{"a":2}`, `{}`)
	k3 := put(t, s, `{"a":3}`, `{}`)
	got := s.List()
	if len(got) != 3 || got[0].Key != k1 || got[1].Key != k2 || got[2].Key != k3 {
		t.Fatalf("List order wrong: %+v", got)
	}

	n, err := s.GC(1)
	if err != nil || n != 2 {
		t.Fatalf("GC: evicted %d err %v, want 2", n, err)
	}
	if s.Contains(k1) || s.Contains(k2) || !s.Contains(k3) {
		t.Error("GC evicted the wrong entries")
	}
	if e, _, _ := s.Get(k1); e != nil {
		t.Error("evicted entry still readable")
	}
}

func TestCorruptObjectQuarantinedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := put(t, s, `{"a":1}`, `{"r":1}`)
	if err := os.WriteFile(s.objectPath(key), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := obs.NewMetrics()
	s.SetMetrics(m)
	e, _, err := s.Get(key)
	if err != nil || e != nil {
		t.Fatalf("corrupt Get: entry=%v err=%v, want clean miss", e, err)
	}
	if s.Contains(key) {
		t.Error("corrupt key still indexed")
	}
	bad, _ := filepath.Glob(filepath.Join(dir, quarantineDir, "*.bad"))
	if len(bad) != 1 {
		t.Errorf("quarantine holds %d files, want 1", len(bad))
	}
	if m.Value("store_quarantined_total") != 1 || m.Value("store_misses_total") != 1 {
		t.Errorf("metrics: %+v", m.Snapshot())
	}
}

func TestKeyMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	key := put(t, s, `{"a":1}`, `{"r":1}`)
	// A valid entry body whose request no longer hashes to its key.
	data, _ := os.ReadFile(s.objectPath(key))
	tampered := bytes.Replace(data, []byte(`{"a":1}`), []byte(`{"a":9}`), 1)
	os.WriteFile(s.objectPath(key), tampered, 0o644)
	if e, _, _ := s.Get(key); e != nil {
		t.Fatal("tampered entry served")
	}
}

func TestCorruptIndexRebuilds(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	k1 := put(t, s, `{"a":1}`, `{"r":1}`)
	k2 := put(t, s, `{"a":2}`, `{"r":2}`)
	// Corrupt the index and one of the two objects: reopen must salvage the
	// good object and quarantine the bad one.
	os.WriteFile(filepath.Join(dir, indexFile), []byte("not json"), 0o644)
	os.WriteFile(s.objectPath(k2), []byte("{broken"), 0o644)

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after corruption: %v", err)
	}
	if !s2.Contains(k1) || s2.Contains(k2) {
		t.Fatalf("rebuild: contains(k1)=%v contains(k2)=%v", s2.Contains(k1), s2.Contains(k2))
	}
	e, _, _ := s2.Get(k1)
	if e == nil || string(e.Result) != `{"r":1}` {
		t.Fatalf("salvaged entry unreadable: %+v", e)
	}
	// Sequence numbering continues past the salvaged entries.
	k3 := put(t, s2, `{"a":3}`, `{}`)
	if e, _, _ := s2.Get(k3); e == nil || e.Seq <= 1 {
		t.Errorf("post-rebuild seq = %+v", e)
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	put(t, s, `{"a":1}`, `{"r":1}`)
	var stray []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			stray = append(stray, path)
		}
		return nil
	})
	if len(stray) != 0 {
		t.Errorf("temp files left behind: %v", stray)
	}
}

func TestMetricsCounters(t *testing.T) {
	s, _ := Open(t.TempDir())
	m := obs.NewMetrics()
	s.SetMetrics(m)
	key := put(t, s, `{"a":1}`, `{}`)
	s.Get(key)
	s.Get(strings.Repeat("00", 32))
	if m.Value("store_puts_total") != 1 || m.Value("store_hits_total") != 1 || m.Value("store_misses_total") != 1 {
		t.Errorf("metrics: %+v", m.Snapshot())
	}
	var sb strings.Builder
	if err := m.Render(&sb); err != nil {
		t.Fatal(err)
	}
	// Render now carries # HELP/# TYPE exposition headers; the sample lines
	// themselves must keep the plain `name value` form.
	for _, line := range []string{"store_hits_total 1\n", "store_misses_total 1\n", "store_puts_total 1\n"} {
		if !strings.Contains(sb.String(), line) {
			t.Errorf("Render missing %q:\n%s", line, sb.String())
		}
	}
}
