// Package store is the on-disk, content-addressed experiment result store.
//
// Every completed simulation becomes a durable, addressable artifact: the
// key is the SHA-256 of the canonical encoding of the run's request (the
// harness derives it — request coordinates plus every option that reaches
// the simulator, prefixed with the store schema version), and the value is
// the run's full sim.Result JSON plus optional trace/autopsy artifact
// paths. Capacity-study campaigns are large config sweeps re-run with
// small deltas; with the store underneath the scheduler, regenerating one
// figure re-simulates only the cells that actually changed.
//
// Layout on disk:
//
//	<dir>/index.json            index: schema, next sequence, entry list
//	<dir>/objects/<k[:2]>/<k>.json  one entry per key, written atomically
//	<dir>/quarantine/<k>.bad    corrupt entries moved aside, never fatal
//
// Durability and corruption policy: object files are written to a temp
// file and renamed into place, so a crash never leaves a half-written
// entry at its final path; the index is rewritten the same way after every
// Put. An unreadable or inconsistent entry (bad JSON, schema mismatch, key
// that does not match its own request preimage) is quarantined on access
// and treated as a miss — the store degrades to re-simulation, it does not
// fail. A missing or corrupt index is rebuilt by scanning the objects
// directory, quarantining what cannot be salvaged.
//
// Serving byte-identity: Get returns the raw object file bytes alongside
// the decoded entry. A server that responds with those bytes verbatim
// serves byte-identical bodies for every hit of the same key, which is the
// determinism property the end-to-end tests assert.
//
// Location independence: object files carry no node-local state (the
// insertion sequence lives only in the index), so the same entry stored on
// two nodes of a fleet is the same bytes. PutRaw accepts another store's
// object bytes verbatim — validated, then written unchanged — which is how
// peer result fetch and result forwarding replicate entries across nodes
// without breaking byte-identity.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"hintm/internal/obs"
)

// Schema versions the store layout and key derivation. It is part of every
// key's preimage and every entry body: bumping it invalidates (but does not
// delete) every existing entry, the right failure mode when an encoding
// changes meaning.
const Schema = "hintm-store/v1"

const (
	indexFile     = "index.json"
	objectsDir    = "objects"
	quarantineDir = "quarantine"
)

// Key returns the content address for a canonical request preimage: the
// hex SHA-256 of the bytes.
func Key(preimage []byte) string {
	sum := sha256.Sum256(preimage)
	return hex.EncodeToString(sum[:])
}

// Entry is one stored run. Request carries the canonical key preimage and
// Result the run's sim.Result encoding; both stay raw JSON here so the
// store has no dependency on the simulator's types and served bytes are
// exactly the stored bytes.
type Entry struct {
	Schema string `json:"schema"`
	Key    string `json:"key"`
	// Seq is the store-assigned insertion sequence; GC evicts lowest-first.
	// It is index-only bookkeeping, deliberately excluded from the object
	// file so object bytes are location-independent: two nodes holding the
	// same key hold byte-identical files.
	Seq     uint64          `json:"-"`
	Request json.RawMessage `json:"request"`
	Result  json.RawMessage `json:"result"`
	// TracePath/AutopsyPath point at per-run observability artifacts when
	// the producing runner had a trace directory configured.
	TracePath   string `json:"tracePath,omitempty"`
	AutopsyPath string `json:"autopsyPath,omitempty"`
}

// IndexEntry is the index's per-entry summary: identity and size, plus the
// request coordinates parsed out of the preimage at Put/rebuild time so
// listings can filter by workload or HTM without opening object files.
type IndexEntry struct {
	Key      string `json:"key"`
	Seq      uint64 `json:"seq"`
	Size     int64  `json:"size"`
	Workload string `json:"workload,omitempty"`
	Scale    string `json:"scale,omitempty"`
	HTM      string `json:"htm,omitempty"`
	Hints    string `json:"hints,omitempty"`
}

// indexVersion versions the index layout (not the key derivation — that is
// Schema's job). Version 2 added the request-coordinate summaries; an
// older index is rebuilt from the object files on Open.
const indexVersion = 2

// indexDoc is the on-disk index layout.
type indexDoc struct {
	Schema  string       `json:"schema"`
	Version int          `json:"version"`
	NextSeq uint64       `json:"nextSeq"`
	Entries []IndexEntry `json:"entries"`
}

// summarize extracts the filterable request coordinates from a canonical
// key preimage. Preimages without those fields (foreign request shapes)
// summarize to empty strings — they simply don't match coordinate filters.
func summarize(request json.RawMessage, e *IndexEntry) {
	var s struct {
		Workload string `json:"workload"`
		Scale    string `json:"scale"`
		HTM      string `json:"htm"`
		Hints    string `json:"hints"`
	}
	if json.Unmarshal(request, &s) != nil {
		return
	}
	e.Workload, e.Scale, e.HTM, e.Hints = s.Workload, s.Scale, s.HTM, s.Hints
}

// Store is safe for concurrent use by any number of goroutines.
type Store struct {
	dir     string
	metrics *obs.Metrics

	mu      sync.Mutex
	entries map[string]IndexEntry
	nextSeq uint64
}

// Open opens (creating if needed) the store rooted at dir. A corrupt or
// missing index is rebuilt from the objects directory; object files that
// cannot be salvaged are quarantined. Open never fails on bad content —
// only on I/O errors creating the layout itself.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	s := &Store{dir: dir, entries: make(map[string]IndexEntry), nextSeq: 1}
	data, err := os.ReadFile(filepath.Join(dir, indexFile))
	var idx indexDoc
	// An index from an older layout version (no request-coordinate
	// summaries) is not wrong, just incomplete: fall through to a rebuild,
	// which re-derives the summaries from the object files.
	if err == nil && json.Unmarshal(data, &idx) == nil && idx.Schema == Schema && idx.Version == indexVersion {
		for _, e := range idx.Entries {
			s.entries[e.Key] = e
		}
		s.nextSeq = idx.NextSeq
		if s.nextSeq == 0 {
			s.nextSeq = 1
		}
		return s, nil
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}

// SetMetrics attaches a registry the store feeds hit/miss/put/quarantine
// counters into (nil detaches).
func (s *Store) SetMetrics(m *obs.Metrics) {
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

func (s *Store) count(name string) {
	s.mu.Lock()
	m := s.metrics
	s.mu.Unlock()
	m.Counter(name).Inc()
}

// rebuild reconstructs the index by scanning the objects directory,
// quarantining any file that fails validation, and rewrites index.json.
// Object files carry no sequence numbers (they are location-independent),
// so a rebuild assigns fresh ones in walk order — key order, which is
// deterministic; the original insertion order is index-only state and does
// not survive losing the index.
func (s *Store) rebuild() error {
	s.entries = make(map[string]IndexEntry)
	s.nextSeq = 1
	root := filepath.Join(s.dir, objectsDir)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil // unreadable: leave for a later quarantine attempt
		}
		e, ok := validate(data, strings.TrimSuffix(filepath.Base(path), ".json"))
		if !ok {
			s.moveToQuarantine(path)
			return nil
		}
		ie := IndexEntry{Key: e.Key, Seq: s.nextSeq, Size: int64(len(data))}
		summarize(e.Request, &ie)
		s.entries[e.Key] = ie
		s.nextSeq++
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: rebuild: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeIndexLocked()
}

// validate checks one object file body against its expected key.
func validate(data []byte, key string) (*Entry, bool) {
	var e Entry
	if json.Unmarshal(data, &e) != nil || e.Schema != Schema || e.Key != key || Key(e.Request) != key {
		return nil, false
	}
	return &e, true
}

func (s *Store) objectPath(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(s.dir, objectsDir, shard, key+".json")
}

// Put stores an entry, deriving its key from the request preimage (callers
// cannot mis-key an entry). The object file and the updated index are both
// written atomically (temp file + rename). It returns the assigned key;
// re-putting an existing key overwrites the object in place and keeps its
// original sequence number.
func (s *Store) Put(e Entry) (string, error) {
	// The request preimage is compacted before hashing so the bytes that
	// come back out of the object file (encoding/json compacts embedded
	// RawMessages) still hash to the entry's key — Get re-verifies exactly
	// that equation.
	var compact bytes.Buffer
	if err := json.Compact(&compact, e.Request); err != nil {
		return "", fmt.Errorf("store: put: request preimage: %w", err)
	}
	e.Request = json.RawMessage(bytes.Clone(compact.Bytes()))
	key := Key(e.Request)
	e.Schema = Schema
	e.Key = key

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		e.Seq = old.Seq
	} else {
		e.Seq = s.nextSeq
		s.nextSeq++
	}
	data, err := json.Marshal(&e)
	if err != nil {
		return "", fmt.Errorf("store: put: %w", err)
	}
	data = append(data, '\n')
	path := s.objectPath(key)
	if err := atomicWrite(path, data); err != nil {
		return "", fmt.Errorf("store: put %s: %w", key, err)
	}
	ie := IndexEntry{Key: key, Seq: e.Seq, Size: int64(len(data))}
	summarize(e.Request, &ie)
	s.entries[key] = ie
	if err := s.writeIndexLocked(); err != nil {
		return "", err
	}
	s.metrics.Counter(obs.MetricStorePuts).Inc()
	return key, nil
}

// PutRaw stores another store's object bytes verbatim: the fleet
// replication path. The bytes must be a valid object body (schema, and a
// key that is the content address of its own request); they are written
// unchanged, so every replica of a key is byte-identical to the original.
// Re-putting an existing key keeps its sequence number, like Put.
func (s *Store) PutRaw(data []byte) (string, error) {
	var probe Entry
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("store: put raw: %w", err)
	}
	e, ok := validate(data, probe.Key)
	if !ok {
		return "", fmt.Errorf("store: put raw: bytes fail validation (schema %q, key %q)", probe.Schema, probe.Key)
	}
	key := e.Key
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.nextSeq
	if old, ok := s.entries[key]; ok {
		seq = old.Seq
	} else {
		s.nextSeq++
	}
	if err := atomicWrite(s.objectPath(key), data); err != nil {
		return "", fmt.Errorf("store: put raw %s: %w", key, err)
	}
	ie := IndexEntry{Key: key, Seq: seq, Size: int64(len(data))}
	summarize(e.Request, &ie)
	s.entries[key] = ie
	if err := s.writeIndexLocked(); err != nil {
		return "", err
	}
	s.metrics.Counter(obs.MetricStorePuts).Inc()
	s.metrics.Counter(obs.MetricStoreReplicas).Inc()
	return key, nil
}

// Get returns the entry for key along with the raw object bytes, or
// (nil, nil, nil) on a miss. A corrupt entry is quarantined and reported
// as a miss; Get only errors on the store's own bookkeeping I/O.
func (s *Store) Get(key string) (*Entry, []byte, error) {
	s.mu.Lock()
	ie, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		s.count(obs.MetricStoreMisses)
		return nil, nil, nil
	}
	path := s.objectPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		// Indexed but unreadable: drop the index entry so later calls are
		// clean misses.
		s.quarantine(key)
		s.count(obs.MetricStoreMisses)
		return nil, nil, nil
	}
	e, valid := validate(data, key)
	if !valid {
		s.quarantine(key)
		s.count(obs.MetricStoreMisses)
		return nil, nil, nil
	}
	// Seq is index-only state (object bytes are location-independent);
	// restore it on the way out so callers still see insertion order.
	e.Seq = ie.Seq
	s.count(obs.MetricStoreHits)
	return e, data, nil
}

// Contains reports whether key is indexed, without touching the object
// file or the hit/miss counters (the serving layer's cheap pre-check).
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// List returns the index in insertion order (ascending sequence).
func (s *Store) List() []IndexEntry {
	s.mu.Lock()
	out := make([]IndexEntry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Filter selects index entries by request coordinates (canonical display
// spellings, as recorded in the key preimage); empty fields match anything.
type Filter struct {
	Workload string
	HTM      string
}

func (f Filter) matches(e IndexEntry) bool {
	return (f.Workload == "" || f.Workload == e.Workload) &&
		(f.HTM == "" || f.HTM == e.HTM)
}

// Select returns up to limit matching entries in insertion order, starting
// after the given sequence number (0 = from the beginning). The returned
// cursor is non-zero when more matches remain — pass it back as `after`
// for the next page. Pagination by sequence number is stable: entries
// inserted between pages appear at the end, never shift existing pages.
func (s *Store) Select(f Filter, after uint64, limit int) (items []IndexEntry, next uint64) {
	if limit <= 0 {
		return nil, 0
	}
	for _, e := range s.List() {
		if e.Seq <= after || !f.matches(e) {
			continue
		}
		if len(items) == limit {
			return items, items[len(items)-1].Seq
		}
		items = append(items, e)
	}
	return items, 0
}

// GC evicts the oldest entries (lowest sequence first) until at most keep
// remain, removing their object files. It returns how many were evicted.
func (s *Store) GC(keep int) (int, error) {
	if keep < 0 {
		keep = 0
	}
	all := s.List()
	if len(all) <= keep {
		return 0, nil
	}
	victims := all[:len(all)-keep]
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range victims {
		if err := os.Remove(s.objectPath(v.Key)); err != nil && !os.IsNotExist(err) {
			return 0, fmt.Errorf("store: gc %s: %w", v.Key, err)
		}
		delete(s.entries, v.Key)
	}
	if err := s.writeIndexLocked(); err != nil {
		return 0, err
	}
	return len(victims), nil
}

// quarantine moves key's object file aside and drops it from the index.
func (s *Store) quarantine(key string) {
	s.mu.Lock()
	delete(s.entries, key)
	err := s.writeIndexLocked()
	s.mu.Unlock()
	_ = err // the index rewrite is best-effort here; the map entry is gone
	s.moveToQuarantine(s.objectPath(key))
	s.count(obs.MetricStoreQuarantined)
}

// moveToQuarantine renames an object file into the quarantine directory.
func (s *Store) moveToQuarantine(path string) {
	dst := filepath.Join(s.dir, quarantineDir,
		strings.TrimSuffix(filepath.Base(path), ".json")+".bad")
	_ = os.Rename(path, dst)
}

// writeIndexLocked atomically rewrites index.json (entries key-sorted for
// byte-stable output). Callers hold s.mu.
func (s *Store) writeIndexLocked() error {
	idx := indexDoc{Schema: Schema, Version: indexVersion, NextSeq: s.nextSeq}
	for _, e := range s.entries {
		idx.Entries = append(idx.Entries, e)
	}
	sort.Slice(idx.Entries, func(i, j int) bool { return idx.Entries[i].Key < idx.Entries[j].Key })
	data, err := json.MarshalIndent(&idx, "", "  ")
	if err != nil {
		return fmt.Errorf("store: index: %w", err)
	}
	data = append(data, '\n')
	if err := atomicWrite(filepath.Join(s.dir, indexFile), data); err != nil {
		return fmt.Errorf("store: index: %w", err)
	}
	return nil
}

// atomicWrite writes data to path via a temp file in the same directory
// plus rename, so readers never observe a partial file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
