// Package trace records and replays simulated memory-access traces. A
// recorded trace captures every data access (thread, address, read/write,
// transactional or not) plus transaction begin/commit/abort boundaries, in a
// compact varint binary format. Offline analysis over traces reproduces the
// paper's §II-B "first-order estimation" methodology: sharing metrics and
// transaction-footprint limit studies without re-running the simulator.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hintm/internal/htm"
	"hintm/internal/mem"
	"hintm/internal/sim"
	"hintm/internal/stats"
)

// Kind tags one trace record.
type Kind uint8

// Record kinds.
const (
	// KindAccess is a data access; flags encode write/inTx.
	KindAccess Kind = iota
	KindTxBegin
	KindTxCommit
	KindTxAbort
)

// Event is one decoded trace record.
type Event struct {
	Kind  Kind
	TID   int
	Addr  mem.Addr // valid for KindAccess
	Write bool
	InTx  bool
	// Reason is the abort reason (valid for KindTxAbort; format TIR2+).
	Reason htm.AbortReason
}

// magic identifies the trace format (and its version). TIR2 added the abort
// reason varint trailing every KindTxAbort record.
var magic = [4]byte{'T', 'I', 'R', '2'}

// magicV1 is the pre-abort-reason format, recognized only to reject it with
// an actionable error.
var magicV1 = [4]byte{'T', 'I', 'R', '1'}

// Writer serializes events; it implements sim.Profiler and sim.TxObserver,
// so attaching it via Machine.SetProfiler records the whole run.
//
//	tw := trace.NewWriter(file)
//	machine.SetProfiler(tw)
//	machine.Run(ctx)
//	tw.Flush()
type Writer struct {
	w        *bufio.Writer
	err      error
	prevAddr uint64
	n        uint64
}

// NewWriter starts a trace stream on w.
func NewWriter(w io.Writer) *Writer {
	tw := &Writer{w: bufio.NewWriterSize(w, 1<<16)}
	_, tw.err = tw.w.Write(magic[:])
	return tw
}

var (
	_ sim.Profiler   = (*Writer)(nil)
	_ sim.TxObserver = (*Writer)(nil)
)

func (tw *Writer) putUvarint(v uint64) {
	if tw.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, tw.err = tw.w.Write(buf[:n])
}

// OnAccess implements sim.Profiler.
func (tw *Writer) OnAccess(tid int, addr mem.Addr, write, inTx bool) {
	// header byte: kind(2b) | write | inTx | tid(4b): tids are < 16 in
	// every machine configuration this simulator supports... larger tids
	// (main thread id = contexts, up to 16) need the extension below.
	flags := uint64(0)
	if write {
		flags |= 1
	}
	if inTx {
		flags |= 2
	}
	tw.putUvarint(uint64(KindAccess) | flags<<2 | uint64(tid)<<4)
	// Addresses are delta-encoded (zigzag) against the previous access:
	// spatial locality makes most deltas one or two bytes.
	delta := int64(uint64(addr) - tw.prevAddr)
	tw.putUvarint(zigzag(delta))
	tw.prevAddr = uint64(addr)
	tw.n++
}

// OnTxEvent implements sim.TxObserver. Abort records carry their reason as a
// trailing varint (TIR2).
func (tw *Writer) OnTxEvent(tid int, ev sim.TxEventKind, reason htm.AbortReason) {
	kind := KindTxBegin
	switch ev {
	case sim.TxEventCommit:
		kind = KindTxCommit
	case sim.TxEventAbort:
		kind = KindTxAbort
	}
	tw.putUvarint(uint64(kind) | uint64(tid)<<4)
	if kind == KindTxAbort {
		tw.putUvarint(uint64(reason))
	}
	tw.n++
}

// Events reports how many records were written.
func (tw *Writer) Events() uint64 { return tw.n }

// Flush completes the stream.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Reader decodes a trace stream.
type Reader struct {
	r        *bufio.Reader
	prevAddr uint64
}

// NewReader opens a trace stream, validating the header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if hdr == magicV1 {
		return nil, fmt.Errorf("trace: format TIR1 is no longer readable " +
			"(TIR2 added abort reasons); re-record the trace")
	}
	if hdr != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr)
	}
	return &Reader{r: br}, nil
}

// Next decodes the next event; io.EOF ends the stream.
func (tr *Reader) Next() (Event, error) {
	head, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Event{}, err
	}
	kind := Kind(head & 3)
	if kind != KindAccess {
		ev := Event{Kind: kind, TID: int(head >> 4)}
		if kind == KindTxAbort {
			reason, err := binary.ReadUvarint(tr.r)
			if err != nil {
				return Event{}, fmt.Errorf("trace: truncated abort record: %w", err)
			}
			ev.Reason = htm.AbortReason(reason)
		}
		return ev, nil
	}
	delta, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Event{}, fmt.Errorf("trace: truncated access record: %w", err)
	}
	tr.prevAddr += uint64(unzigzag(delta))
	return Event{
		Kind:  KindAccess,
		TID:   int(head >> 4),
		Write: head&(1<<2) != 0,
		InTx:  head&(1<<3) != 0,
		Addr:  mem.Addr(tr.prevAddr),
	}, nil
}

// ForEach decodes every event, invoking fn.
func (tr *Reader) ForEach(fn func(Event) error) error {
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

// LimitReport is the offline limit study over one trace: committed
// transaction footprints and the hypothetical capacity-abort rate for a
// range of buffer sizes — the paper's Fig.-6 analysis, trace-driven.
type LimitReport struct {
	// Footprints is the distinct-blocks-per-committed-TX histogram.
	Footprints *stats.Hist
	// CommittedTxs counts committed transactions.
	CommittedTxs uint64
	// AbortFracAt maps buffer sizes to the fraction of committed TXs whose
	// footprint would overflow a structure of that size.
	AbortFracAt map[int]float64
}

// LimitStudy replays a trace and computes footprint statistics. Accesses
// between a thread's TxBegin and TxCommit contribute to that transaction's
// footprint; aborted attempts are discarded, exactly like the simulator's
// own accounting.
func LimitStudy(r io.Reader, bufferSizes []int) (*LimitReport, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	rep := &LimitReport{Footprints: stats.NewHist(), AbortFracAt: make(map[int]float64)}
	open := make(map[int]map[uint64]struct{}) // tid -> distinct blocks
	err = tr.ForEach(func(ev Event) error {
		switch ev.Kind {
		case KindTxBegin:
			open[ev.TID] = make(map[uint64]struct{})
		case KindTxAbort:
			delete(open, ev.TID)
		case KindTxCommit:
			if blocks, ok := open[ev.TID]; ok {
				rep.Footprints.Add(len(blocks))
				rep.CommittedTxs++
				delete(open, ev.TID)
			}
		case KindAccess:
			if blocks, ok := open[ev.TID]; ok && ev.InTx {
				blocks[ev.Addr.Block()] = struct{}{}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, size := range bufferSizes {
		rep.AbortFracAt[size] = rep.Footprints.FractionAbove(size)
	}
	return rep, nil
}
