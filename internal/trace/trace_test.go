package trace

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"hintm/internal/classify"
	"hintm/internal/htm"
	"hintm/internal/mem"
	"hintm/internal/sim"
	"hintm/internal/workloads"
)

func TestRoundTripEvents(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	tw.OnTxEvent(3, sim.TxEventBegin, htm.AbortNone)
	tw.OnAccess(3, 0x1000, false, true)
	tw.OnAccess(3, 0x1008, true, true)
	tw.OnAccess(3, 0x40, false, false) // backwards delta
	tw.OnTxEvent(3, sim.TxEventCommit, htm.AbortNone)
	tw.OnTxEvent(5, sim.TxEventAbort, htm.AbortCapacity)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Events() != 6 {
		t.Fatalf("events = %d", tw.Events())
	}

	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: KindTxBegin, TID: 3},
		{Kind: KindAccess, TID: 3, Addr: 0x1000, InTx: true},
		{Kind: KindAccess, TID: 3, Addr: 0x1008, Write: true, InTx: true},
		{Kind: KindAccess, TID: 3, Addr: 0x40},
		{Kind: KindTxCommit, TID: 3},
		{Kind: KindTxAbort, TID: 5, Reason: htm.AbortCapacity},
	}
	for i, w := range want {
		got, err := tr.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("event %d = %+v, want %+v", i, got, w)
		}
	}
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestOldFormatRejectedWithHint(t *testing.T) {
	_, err := NewReader(strings.NewReader("TIR1...."))
	if err == nil {
		t.Fatal("TIR1 stream accepted")
	}
	if !strings.Contains(err.Error(), "re-record") {
		t.Fatalf("TIR1 rejection should tell the user to re-record, got: %v", err)
	}
}

func TestAbortReasonRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	for _, r := range htm.AbortReasons {
		tw.OnTxEvent(1, sim.TxEventBegin, htm.AbortNone)
		tw.OnTxEvent(1, sim.TxEventAbort, r)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []htm.AbortReason
	if err := tr.ForEach(func(ev Event) error {
		if ev.Kind == KindTxAbort {
			got = append(got, ev.Reason)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(htm.AbortReasons) {
		t.Fatalf("decoded %d aborts, want %d", len(got), len(htm.AbortReasons))
	}
	for i, r := range htm.AbortReasons {
		if got[i] != r {
			t.Fatalf("abort %d decoded reason %v, want %v", i, got[i], r)
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 64, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag(%d) round-trips to %d", v, got)
		}
	}
}

// recordWorkload runs one workload with the trace writer attached.
func recordWorkload(t *testing.T, name string, cfg sim.Config) (*bytes.Buffer, *sim.Result) {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	mod := spec.Build(spec.DefaultThreads, workloads.Small)
	if _, err := classify.Run(mod); err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(cfg, mod)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	m.SetProfiler(tw)
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf, res
}

func TestLimitStudyMatchesSimulator(t *testing.T) {
	// Record labyrinth on InfCap; the trace-driven footprint histogram must
	// match the simulator's own committed-TX footprints... up to hinted
	// accesses (none here: baseline hints) and block granularity (same).
	cfg := sim.DefaultConfig()
	cfg.HTM = sim.HTMInfCap
	buf, res := recordWorkload(t, "labyrinth", cfg)

	rep, err := LimitStudy(bytes.NewReader(buf.Bytes()), []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommittedTxs != res.Commits {
		t.Fatalf("trace commits = %d, simulator = %d", rep.CommittedTxs, res.Commits)
	}
	// The simulator tracks unsafe accesses only; with hints off both count
	// every block, so the means must agree exactly.
	if got, want := rep.Footprints.Mean(), res.TxFootprints.Mean(); got != want {
		t.Fatalf("trace footprint mean = %.2f, simulator = %.2f", got, want)
	}
	if rep.AbortFracAt[64] != res.TxFootprints.FractionAbove(64) {
		t.Fatal("limit-study abort fraction disagrees with simulator histogram")
	}
}

func TestAbortedAttemptsDiscarded(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	// One aborted attempt touching 5 blocks, then a committed retry with 2.
	tw.OnTxEvent(0, sim.TxEventBegin, htm.AbortNone)
	for i := 0; i < 5; i++ {
		tw.OnAccess(0, mem.Addr(i*64), false, true)
	}
	tw.OnTxEvent(0, sim.TxEventAbort, htm.AbortConflict)
	tw.OnTxEvent(0, sim.TxEventBegin, htm.AbortNone)
	tw.OnAccess(0, 0, false, true)
	tw.OnAccess(0, 64, true, true)
	tw.OnTxEvent(0, sim.TxEventCommit, htm.AbortNone)
	tw.Flush()

	rep, err := LimitStudy(bytes.NewReader(buf.Bytes()), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommittedTxs != 1 {
		t.Fatalf("committed = %d", rep.CommittedTxs)
	}
	if rep.Footprints.Max() != 2 {
		t.Fatalf("footprint = %d, want 2 (aborted attempt discarded)", rep.Footprints.Max())
	}
	if rep.AbortFracAt[1] != 1.0 {
		t.Fatalf("abort frac at size 1 = %f", rep.AbortFracAt[1])
	}
}

func TestTraceCompactness(t *testing.T) {
	cfg := sim.DefaultConfig()
	buf, res := recordWorkload(t, "kmeans", cfg)
	perEvent := float64(buf.Len()) / float64(res.Steps)
	// Sanity: delta encoding keeps traces a few bytes per record, far below
	// a naive 17-byte fixed layout.
	if buf.Len() == 0 {
		t.Fatal("empty trace")
	}
	if perEvent > 8 {
		t.Fatalf("trace too fat: %.1f bytes per instruction-ish event", perEvent)
	}
}
