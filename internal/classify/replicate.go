package classify

import (
	"fmt"

	"hintm/internal/alias"
	"hintm/internal/ir"
)

// maxClones bounds function replication so pathological programs cannot
// blow the module up; the paper's workloads need a handful of clones.
const maxClones = 128

// maxReplicationDepth bounds transitive replication through call chains.
const maxReplicationDepth = 8

// ctxMask is a replication context: which pointer parameters arrive with
// all-safe-to-load and all-safe-to-store (thread-private + initializing)
// targets at a transactional call site.
type ctxMask struct {
	load  uint64
	store uint64
}

func (c ctxMask) empty() bool { return c.load == 0 && c.store == 0 }

func (c ctxMask) suffix() string { return fmt.Sprintf("$l%x_s%x", c.load, c.store) }

// provenance records, for one register, the roots its value may originate
// from: parameters, locally materialized objects (allocas, mallocs, global
// addresses), and/or memory (loaded pointers, call results).
type provenance struct {
	params uint64
	objs   alias.ObjSet
	mem    bool
	any    bool
}

func (p *provenance) merge(o provenance) bool {
	changed := false
	if o.params&^p.params != 0 {
		p.params |= o.params
		changed = true
	}
	for id := range o.objs {
		if !p.objs.Has(id) {
			if p.objs == nil {
				p.objs = make(alias.ObjSet)
			}
			p.objs[id] = struct{}{}
			changed = true
		}
	}
	if o.mem && !p.mem {
		p.mem = true
		changed = true
	}
	if o.any && !p.any {
		p.any = true
		changed = true
	}
	return changed
}

// siteObjects resolves the abstract object materialized by an address-
// producing instruction (alloca, malloc, global-addr), or nil.
func (cl *classifier) siteObjects(in *ir.Instr) alias.ObjSet {
	switch in.Op {
	case ir.OpAlloca, ir.OpMalloc:
		if o, ok := cl.al.ObjectForInstr(in.ID); ok {
			return alias.ObjSet{o: struct{}{}}
		}
	case ir.OpGlobalAddr:
		if o, ok := cl.al.ObjectForGlobal(in.Sym); ok {
			return alias.ObjSet{o: struct{}{}}
		}
	}
	return nil
}

// computeProvenance derives, flow-insensitively, the roots of each
// register's value within f. resolve maps allocation-site instructions to
// their abstract objects.
func computeProvenance(f *ir.Func, resolve func(*ir.Instr) alias.ObjSet) []provenance {
	prov := make([]provenance, f.NumRegs)
	for i, p := range f.Params {
		if i < 64 {
			prov[p].params |= 1 << uint(i)
			prov[p].any = true
		} else {
			prov[p].mem, prov[p].any = true, true
		}
	}
	for changed := true; changed; {
		changed = false
		f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
			switch in.Op {
			case ir.OpMov:
				if prov[in.Dst].merge(prov[in.A]) {
					changed = true
				}
			case ir.OpBin:
				if prov[in.Dst].merge(prov[in.A]) {
					changed = true
				}
				if prov[in.Dst].merge(prov[in.B]) {
					changed = true
				}
			case ir.OpLoad, ir.OpCall, ir.OpRand:
				if in.Dst != ir.NoReg {
					if prov[in.Dst].merge(provenance{mem: true, any: true}) {
						changed = true
					}
				}
			case ir.OpAlloca, ir.OpMalloc, ir.OpGlobalAddr:
				if prov[in.Dst].merge(provenance{any: true, objs: resolve(in)}) {
					changed = true
				}
			}
		})
	}
	return prov
}

// replicate specializes callee for the given context and returns the clone's
// name (or the callee itself when replication cannot help). Clones are
// memoized per (callee, mask). Inside the clone:
//
//   - a load is safe if its (original's) global points-to targets are all
//     safe locations, or every provenance root of its address is load-safe
//     in context;
//   - a store is safe if every provenance root is a store-safe parameter or
//     a thread-private local object the callee never loads-before-stores;
//   - calls replicate transitively with masks derived from the clone's own
//     provenance.
func (cl *classifier) replicate(callee string, mask ctxMask, depth int) string {
	orig := cl.m.Func(callee)
	if orig == nil || mask.empty() || depth > maxReplicationDepth ||
		cl.cloneCount >= maxClones {
		return callee
	}
	key := callee + mask.suffix()
	if name, ok := cl.clones[key]; ok {
		return name
	}
	if !hasMarkableWork(orig) {
		cl.clones[key] = callee
		return callee
	}
	clone := cl.m.CloneFunc(orig, key)
	cl.clones[key] = clone.Name
	cl.cloneCount++
	cl.report.Replicated++

	prov := computeProvenance(clone, cl.siteObjects)
	clone.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpLoad:
			in.Safe = cl.cloneLoadSafe(orig, prov, in, mask)
		case ir.OpStore:
			in.Safe = cl.cloneStoreSafe(orig, prov, in, mask)
		case ir.OpCall:
			sub := cl.cloneCallMask(orig, prov, in, mask)
			in.Sym = cl.replicate(in.Sym, sub, depth+1)
		}
	})
	return clone.Name
}

// hasMarkableWork reports whether replication could mark anything in f.
func hasMarkableWork(f *ir.Func) bool {
	found := false
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.IsMemAccess() || in.Op == ir.OpCall {
			found = true
		}
	})
	return found
}

// cloneLoadSafe decides safety for a load in a clone of orig. Register
// numbering is identical between clone and original, and the original's
// points-to is a (merged-context) superset of the clone's, so the global
// fallback is sound.
func (cl *classifier) cloneLoadSafe(orig *ir.Func, prov []provenance, in *ir.Instr, mask ctxMask) bool {
	if cl.esc.AllSafe(cl.al.PointsTo(orig, in.A)) {
		return true
	}
	return rootsSafe(prov, in, mask.load, cl.esc.SafeLocation)
}

func (cl *classifier) cloneStoreSafe(orig *ir.Func, prov []provenance, in *ir.Instr, mask ctxMask) bool {
	return rootsSafe(prov, in, mask.store, func(o alias.ObjID) bool {
		return cl.esc.ThreadPrivate(o) && cl.summaries[orig.Name][o] != faUse
	})
}

// rootsSafe checks every provenance root of the access's address register:
// parameter roots must be set in paramMask, object roots must satisfy objOK,
// and memory-derived roots are conservatively unsafe.
func rootsSafe(prov []provenance, in *ir.Instr, paramMask uint64,
	objOK func(alias.ObjID) bool) bool {

	p := prov[in.A]
	if !p.any || p.mem {
		return false
	}
	if p.params&^paramMask != 0 {
		return false
	}
	for o := range p.objs {
		if !objOK(o) {
			return false
		}
	}
	return true
}

// cloneCallMask derives the replication context for a call inside a clone
// of orig, from the clone's provenance and the incoming context.
func (cl *classifier) cloneCallMask(orig *ir.Func, prov []provenance, in *ir.Instr, mask ctxMask) ctxMask {
	var sub ctxMask
	for i, arg := range in.Args {
		if i >= 64 {
			break
		}
		p := prov[arg]
		if !p.any {
			// Scalar produced by pure arithmetic/constants: safe
			// contributor (see callMask).
			sub.load |= 1 << uint(i)
			sub.store |= 1 << uint(i)
			continue
		}
		if p.mem {
			continue
		}
		loadOK := p.params&^mask.load == 0
		storeOK := p.params&^mask.store == 0
		for o := range p.objs {
			if !cl.esc.SafeLocation(o) {
				loadOK = false
			}
			if !cl.esc.ThreadPrivate(o) || cl.summaries[orig.Name][o] == faUse {
				storeOK = false
			}
		}
		if loadOK {
			sub.load |= 1 << uint(i)
		}
		if storeOK {
			sub.store |= 1 << uint(i)
		}
	}
	return sub
}
