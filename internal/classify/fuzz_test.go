package classify

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"hintm/internal/ir"
	"hintm/internal/opt"
	"hintm/internal/sim"
)

// The classifier's soundness contract: marking an access safe must never
// change program semantics. Safe stores skip the undo log, so a wrongly
// "initializing" mark corrupts state across abort/retry — which this fuzzer
// detects by running randomly generated programs on a tiny HTM (to force
// many capacity aborts and retries) with hints off and on, and comparing
// every output word against an InfCap golden run.
//
// Programs are single-threaded (the worker is the only TX thread), so all
// visible state is schedule-independent and any divergence is a classifier
// or rollback bug, not a race.

// genProgram builds a random but always-terminating transactional program.
func genProgram(rng *rand.Rand) *ir.Module {
	b := ir.NewBuilder(fmt.Sprintf("fuzz%d", rng.Int63()))
	b.Global("out", 64)    // observable output array (one page)
	b.Global("shared", 16) // extra shared scratch

	w := b.ThreadBody("worker", 1)

	// Memory targets: a stack slot array, a heap buffer, and the globals.
	alloca := w.Alloca(16)
	heap := w.MallocI(16 * 8)
	out := w.GlobalAddr("out")
	shared := w.GlobalAddr("shared")

	// A pool of scalar registers the generator mixes.
	regs := []ir.Reg{w.Param(0), w.C(1), w.C(7), w.C(13)}
	pick := func() ir.Reg { return regs[rng.Intn(len(regs))] }

	// target returns (baseReg, byte offset) for a random memory location.
	target := func() (ir.Reg, int64) {
		switch rng.Intn(4) {
		case 0:
			return alloca, int64(rng.Intn(16)) * 8
		case 1:
			return heap, int64(rng.Intn(16)) * 8
		case 2:
			return out, int64(rng.Intn(64)) * 8
		default:
			return shared, int64(rng.Intn(16)) * 8
		}
	}

	label := 0
	fresh := func(prefix string) *ir.Block {
		label++
		return w.NewBlock(fmt.Sprintf("%s%d", prefix, label))
	}
	var emitOps func(depth, n int)
	emitOps = func(depth, n int) {
		for i := 0; i < n; i++ {
			switch op := rng.Intn(10); {
			case op < 3: // store
				base, off := target()
				w.Store(base, off, pick())
			case op < 6: // load into the pool
				base, off := target()
				regs = append(regs, w.Load(base, off))
			case op < 8: // arithmetic
				kinds := []ir.BinKind{ir.BinAdd, ir.BinSub, ir.BinMul, ir.BinXor, ir.BinAnd}
				regs = append(regs, w.Bin(kinds[rng.Intn(len(kinds))], pick(), pick()))
			case op < 9 && depth < 2: // branch on a data-dependent condition
				cond := w.Cmp(ir.CmpLT, w.Bin(ir.BinAnd, pick(), w.C(7)), w.C(4))
				then := fresh("t")
				els := fresh("e")
				join := fresh("j")
				w.CondBr(cond, then, els)
				w.SetBlock(then)
				emitOps(depth+1, rng.Intn(3)+1)
				w.Br(join)
				w.SetBlock(els)
				emitOps(depth+1, rng.Intn(3)+1)
				w.Br(join)
				w.SetBlock(join)
			default: // bounded counted loop of stores (defines regions)
				base, off := target()
				iters := int64(rng.Intn(4) + 1)
				iv := w.C(0)
				body := fresh("l")
				done := fresh("d")
				w.Br(body)
				w.SetBlock(body)
				w.Store(base, off, w.Add(pick(), iv))
				w.MovTo(iv, w.AddI(iv, 1))
				c := w.Cmp(ir.CmpLT, iv, w.C(iters))
				w.CondBr(c, body, done)
				w.SetBlock(done)
			}
		}
	}

	// 1-3 transactions with random bodies; accesses between them too.
	nTx := rng.Intn(3) + 1
	for t := 0; t < nTx; t++ {
		emitOps(0, rng.Intn(4))
		w.TxBegin()
		emitOps(0, rng.Intn(12)+6)
		w.TxEnd()
	}
	// Publish everything observable: copy private state into out.
	for i := int64(0); i < 8; i++ {
		v := w.Load(alloca, i*8)
		hv := w.Load(heap, i*8)
		w.Store(out, (32+i)*8, w.Add(v, hv))
	}
	w.FreeI(heap, 16*8)
	w.RetVoid()

	mn := b.Function("main", 0)
	one := mn.C(1) // single-threaded: outputs are schedule-independent
	mn.Parallel(one, "worker")
	mn.RetVoid()
	return b.M
}

// outputs snapshots the observable output array.
func outputs(m *sim.Machine) [64]int64 {
	var o [64]int64
	for i := range o {
		o[i] = m.ReadGlobal("out", int64(i))
	}
	return o
}

func runFuzz(t *testing.T, mod *ir.Module, kind sim.HTMKind, hints sim.HintMode) ([64]int64, *sim.Result) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.HTM = kind
	cfg.Hints = hints
	cfg.P8Entries = 4 // tiny: force capacity aborts and retries
	m, err := sim.New(cfg, mod)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return outputs(m), res
}

// checkSoundness generates the program for one seed, optionally optimizes
// it, classifies it, and compares every configuration's outputs against the
// InfCap golden run. It reports what the seed exercised so callers can
// assert corpus strength.
func checkSoundness(t *testing.T, seed int64, useOpt bool) (sawAborts, sawSafeMarks bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mod := genProgram(rng)
	if err := mod.Verify(); err != nil {
		t.Fatalf("seed %d: generated invalid module: %v", seed, err)
	}
	if useOpt {
		// The optimized half of the corpus fuzzes the whole
		// opt → classify → simulate pipeline.
		if _, err := opt.Run(mod); err != nil {
			t.Fatalf("seed %d: opt: %v", seed, err)
		}
	}
	rep, err := Run(mod)
	if err != nil {
		t.Fatalf("seed %d: classify: %v", seed, err)
	}
	sawSafeMarks = rep.SafeTxLoads+rep.SafeTxStores > 0

	golden, _ := runFuzz(t, mod, sim.HTMInfCap, sim.HintNone)
	baseline, bres := runFuzz(t, mod, sim.HTMP8, sim.HintNone)
	hinted, _ := runFuzz(t, mod, sim.HTMP8, sim.HintStatic)
	full, _ := runFuzz(t, mod, sim.HTMP8, sim.HintFull)
	sawAborts = bres.TotalAborts() > 0

	for name, got := range map[string][64]int64{
		"P8/baseline": baseline, "P8/st": hinted, "P8/full": full,
	} {
		if got != golden {
			t.Fatalf("seed %d: %s output diverged from golden\nmodule:\n%s",
				seed, name, mod.String())
		}
	}
	return sawAborts, sawSafeMarks
}

func TestClassifierSoundnessFuzz(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	var sawAborts, sawSafeMarks bool
	for seed := 0; seed < seeds; seed++ {
		aborts, marks := checkSoundness(t, int64(seed), seed%2 == 0)
		sawAborts = sawAborts || aborts
		sawSafeMarks = sawSafeMarks || marks
	}
	if !sawSafeMarks {
		t.Error("fuzzer never produced a safe-marked access — generator too weak")
	}
	if !sawAborts {
		t.Error("fuzzer never saw an abort — tiny-buffer pressure missing")
	}
}

// FuzzClassifierSoundness is the native-fuzzing entry point over the same
// property: the engine mutates the generator seed (and the optimize bit),
// searching for programs where hint-marked accesses change semantics.
// `make fuzz-short` runs it for 10s as part of CI.
func FuzzClassifierSoundness(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, seed%2 == 0)
	}
	f.Fuzz(func(t *testing.T, seed int64, useOpt bool) {
		checkSoundness(t, seed, useOpt)
	})
}
