// Package classify implements HinTM's static memory-access classification
// (paper §IV-A) over TIR modules. It plays the role of the paper's LLVM
// passes: using the alias and escape analyses it marks transactional loads
// and stores that can never participate in a race with the Safe flag (the
// load_word_safe / store_word_safe encodings), and replicates functions
// called with safe arguments so their accesses can be specialized without
// affecting unsafe callers.
//
// Marking rules (paper §III):
//
//   - a load is safe if every memory location it may target is a safe
//     location (thread-private, or shared read-only in the parallel region);
//   - a store is safe only if every target is thread-private AND the target
//     obeys the defined-before-used discipline within the enclosing
//     transaction (an "initializing" store), so an abort cannot leak
//     partially-updated state into the retry.
//
// The pass is deliberately conservative: unresolved provenance, mixed-safety
// target sets, and recursion all classify as unsafe, mirroring the paper's
// "conservatively classified as unsafe" rule.
package classify

import (
	"fmt"
	"sort"

	"hintm/internal/alias"
	"hintm/internal/cfg"
	"hintm/internal/escape"
	"hintm/internal/ir"
)

// Report summarizes what the pass did.
type Report struct {
	// TxLoads/TxStores count static memory instructions inside transaction
	// regions (including replicated clones, which only run inside TXs).
	TxLoads, TxStores int
	// SafeTxLoads/SafeTxStores count those marked safe.
	SafeTxLoads, SafeTxStores int
	// Replicated counts specialized function clones created.
	Replicated int
	// Clones lists the clone names, sorted.
	Clones []string
}

// String renders the report for the tirc CLI.
func (r *Report) String() string {
	return fmt.Sprintf(
		"tx loads: %d (%d safe)  tx stores: %d (%d safe)  clones: %d",
		r.TxLoads, r.SafeTxLoads, r.TxStores, r.SafeTxStores, r.Replicated)
}

type classifier struct {
	m   *ir.Module
	al  *alias.Analysis
	esc *escape.Result

	txRegions map[string]cfg.TxRegion
	summaries map[string]map[alias.ObjID]fa
	accessed  map[string]alias.ObjSet
	txBad     map[int]map[alias.ObjID]bool

	clones     map[string]string
	cloneCount int
	report     *Report
}

// Run performs static classification on m, mutating it in place (Safe flags
// set, clones added, transactional call sites retargeted), and returns a
// report. The module must verify.
func Run(m *ir.Module) (*Report, error) {
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("classify: %w", err)
	}
	cl := &classifier{
		m:         m,
		al:        alias.Analyze(m),
		txRegions: make(map[string]cfg.TxRegion),
		summaries: make(map[string]map[alias.ObjID]fa),
		accessed:  make(map[string]alias.ObjSet),
		txBad:     make(map[int]map[alias.ObjID]bool),
		clones:    make(map[string]string),
		report:    &Report{},
	}
	cl.esc = escape.Analyze(m, cl.al)

	for _, f := range m.Funcs {
		region, err := cfg.TxRegions(f)
		if err != nil {
			return nil, fmt.Errorf("classify: %w", err)
		}
		cl.txRegions[f.Name] = region
	}
	cl.computeSummaries()
	cl.mark()
	cl.count()
	sort.Strings(cl.report.Clones)
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("classify: post-pass verify: %w", err)
	}
	return cl.report, nil
}

// mark walks every transaction region, classifying memory instructions and
// replicating transactional callees. The functions slice is snapshotted so
// clones appended during the walk are not re-walked (they are marked inside
// replicate).
func (cl *classifier) mark() {
	funcs := append([]*ir.Func(nil), cl.m.Funcs...)
	for _, f := range funcs {
		region := cl.txRegions[f.Name]
		if len(region) == 0 {
			continue
		}
		f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
			txID, inTx := region[in]
			if !inTx {
				return
			}
			switch in.Op {
			case ir.OpLoad:
				in.Safe = cl.esc.AllSafe(cl.al.AccessedObjects(f, in))
			case ir.OpStore:
				in.Safe = cl.storeSafe(f, in, txID)
			case ir.OpCall:
				mask := cl.callMask(f, in, txID)
				in.Sym = cl.replicate(in.Sym, mask, 0)
			}
		})
	}
}

func (cl *classifier) storeSafe(f *ir.Func, in *ir.Instr, txID int) bool {
	objs := cl.al.AccessedObjects(f, in)
	if len(objs) == 0 {
		return false
	}
	for o := range objs {
		if !cl.esc.ThreadPrivate(o) || !cl.txInitSafe(txID, o) {
			return false
		}
	}
	return true
}

// callMask computes the replication context for a transactional call site.
func (cl *classifier) callMask(f *ir.Func, in *ir.Instr, txID int) ctxMask {
	var mask ctxMask
	for i, arg := range in.Args {
		if i >= 64 {
			break
		}
		pts := cl.al.PointsTo(f, arg)
		if len(pts) == 0 {
			// Scalar argument: it contributes no memory objects, so it is a
			// safe participant in callee address arithmetic (indices,
			// bounds). In this IR every pointer originates from an
			// allocation/global and carries points-to, so empty means
			// scalar.
			mask.load |= 1 << uint(i)
			mask.store |= 1 << uint(i)
			continue
		}
		loadOK, storeOK := true, true
		for o := range pts {
			if !cl.esc.SafeLocation(o) {
				loadOK = false
			}
			if !cl.esc.ThreadPrivate(o) || !cl.txInitSafe(txID, o) {
				storeOK = false
			}
		}
		if loadOK {
			mask.load |= 1 << uint(i)
		}
		if storeOK {
			mask.store |= 1 << uint(i)
		}
	}
	return mask
}

// count tallies report statistics: in-region accesses for original
// functions, all accesses for clones (which execute only inside TXs).
func (cl *classifier) count() {
	for _, f := range cl.m.Funcs {
		isClone := false
		for i := 0; i < len(f.Name); i++ {
			if f.Name[i] == '$' {
				isClone = true
				break
			}
		}
		if isClone {
			cl.report.Clones = append(cl.report.Clones, f.Name)
		}
		region := cl.txRegions[f.Name]
		f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
			if !in.IsMemAccess() {
				return
			}
			if !isClone {
				if _, inTx := region[in]; !inTx {
					return
				}
			}
			if in.Op == ir.OpLoad {
				cl.report.TxLoads++
				if in.Safe {
					cl.report.SafeTxLoads++
				}
			} else {
				cl.report.TxStores++
				if in.Safe {
					cl.report.SafeTxStores++
				}
			}
		})
	}
}
