package classify

import (
	"strings"
	"testing"

	"hintm/internal/ir"
)

func run(t *testing.T, b *ir.Builder) *Report {
	t.Helper()
	rep, err := Run(b.M)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// instrSafety collects (op, safe) for all memory accesses in a function.
func safety(f *ir.Func) (loads, safeLoads, stores, safeStores int) {
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpLoad:
			loads++
			if in.Safe {
				safeLoads++
			}
		case ir.OpStore:
			stores++
			if in.Safe {
				safeStores++
			}
		}
	})
	return
}

// TestStackLocalInTx mirrors Listing 1's taskPtr: an alloca written then
// read inside a TX, never escaping — both accesses safe.
func TestStackLocalInTx(t *testing.T) {
	b := ir.NewBuilder("listing1")
	b.Global("shared", 8)

	w := b.ThreadBody("worker", 1)
	slot := w.Alloca(2)
	w.TxBegin()
	w.Store(slot, 0, w.Param(0)) // initializing store to stack local
	v := w.Load(slot, 0)         // safe read-back
	sh := w.GlobalAddr("shared")
	w.Store(sh, 0, v) // unsafe: shared global
	w.TxEnd()
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(4)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	rep := run(t, b)
	loads, safeLoads, stores, safeStores := safety(b.M.Func("worker"))
	if loads != 1 || safeLoads != 1 {
		t.Errorf("loads %d/%d safe, want 1/1", safeLoads, loads)
	}
	if stores != 2 || safeStores != 1 {
		t.Errorf("stores %d/%d safe, want 1/2", safeStores, stores)
	}
	if rep.SafeTxLoads != 1 || rep.SafeTxStores != 1 {
		t.Errorf("report %v", rep)
	}
}

// TestLoadBeforeStoreIsUnsafe: reading a private scratch location before
// writing it violates the initializing discipline — stores stay unsafe.
func TestLoadBeforeStoreIsUnsafe(t *testing.T) {
	b := ir.NewBuilder("m")
	w := b.ThreadBody("worker", 1)
	slot := w.Alloca(1)
	zero := w.C(0)
	w.Store(slot, 0, zero) // pre-TX init
	w.TxBegin()
	old := w.Load(slot, 0)           // load BEFORE store inside TX
	w.Store(slot, 0, w.AddI(old, 1)) // non-initializing: aborted TX leaks +1
	w.TxEnd()
	w.RetVoid()
	mn := b.Function("main", 0)
	n := mn.C(2)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	run(t, b)
	var txStoreSafe, txLoadSafe bool
	w.F.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpStore:
			if in.Safe {
				txStoreSafe = true
			}
		case ir.OpLoad:
			txLoadSafe = in.Safe
		}
	})
	if txStoreSafe {
		t.Error("non-initializing store must be unsafe")
	}
	if !txLoadSafe {
		t.Error("load from thread-private location should still be safe")
	}
}

// TestHeapScratchpadReplication mirrors Listing 2 / labyrinth: a heap grid
// copied via a helper called inside the TX. The helper must be replicated
// and its param-rooted stores marked safe.
func TestHeapScratchpadReplication(t *testing.T) {
	b := ir.NewBuilder("labyrinth-ish")
	b.GlobalPageAligned("grid", 64)
	b.Global("listLock", 1)

	// copyGrid(dst, src): dst[i] = src[i] for i in 0..7
	cp := b.Function("copyGrid", 2)
	loop := cp.NewBlock("loop")
	done := cp.NewBlock("done")
	i := cp.C(0)
	cp.Br(loop)
	cp.SetBlock(loop)
	off := cp.MulI(i, 8)
	src := cp.Add(cp.Param(1), off)
	dst := cp.Add(cp.Param(0), off)
	v := cp.Load(src, 0)
	cp.Store(dst, 0, v)
	cp.MovTo(i, cp.AddI(i, 1))
	c := cp.Cmp(ir.CmpLT, i, cp.C(8))
	cp.CondBr(c, loop, done)
	cp.SetBlock(done)
	cp.RetVoid()

	w := b.ThreadBody("worker", 1)
	myGrid := w.MallocI(64 * 8)
	w.TxBegin()
	g := w.GlobalAddr("grid")
	w.CallVoid("copyGrid", myGrid, g) // private copy of shared grid
	x := w.Load(myGrid, 0)            // use the copy
	lk := w.GlobalAddr("listLock")
	w.Store(lk, 0, x) // publish result: unsafe
	w.TxEnd()
	w.FreeI(myGrid, 64*8)
	w.RetVoid()

	mn := b.Function("main", 0)
	gp := mn.GlobalAddr("grid")
	c7 := mn.C(7)
	mn.Store(gp, 0, c7) // setup write only
	n := mn.C(8)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	rep := run(t, b)
	if rep.Replicated == 0 {
		t.Fatal("expected copyGrid to be replicated")
	}
	// The TX call site must now target a clone.
	var callee string
	w.F.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpCall {
			callee = in.Sym
		}
	})
	if !strings.Contains(callee, "$") {
		t.Fatalf("call site not retargeted: %q", callee)
	}
	clone := b.M.Func(callee)
	_, safeLoads, _, safeStores := safety(clone)
	if safeLoads != 1 {
		t.Errorf("clone loads safe = %d, want 1 (grid is read-only shared)", safeLoads)
	}
	if safeStores != 1 {
		t.Errorf("clone stores safe = %d, want 1 (dst is private+initializing)", safeStores)
	}
	// Original copyGrid must be untouched (unsafe callers unaffected).
	_, safeLoads, _, safeStores = safety(b.M.Func("copyGrid"))
	if safeLoads != 0 || safeStores != 0 {
		t.Error("original callee must remain unannotated")
	}
	// The worker's own load of the private grid is safe; the lock store is not.
	_, safeLoads, _, safeStores = safety(w.F)
	if safeLoads != 1 {
		t.Errorf("worker safe loads = %d, want 1", safeLoads)
	}
	if safeStores != 0 {
		t.Errorf("worker safe stores = %d, want 0", safeStores)
	}
}

// TestSharedRWNeverSafe: globals written in the region are untouchable.
func TestSharedRWNeverSafe(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("ctr", 1)
	w := b.ThreadBody("worker", 1)
	w.TxBegin()
	g := w.GlobalAddr("ctr")
	v := w.Load(g, 0)
	w.Store(g, 0, w.AddI(v, 1))
	w.TxEnd()
	w.RetVoid()
	mn := b.Function("main", 0)
	n := mn.C(8)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	rep := run(t, b)
	if rep.SafeTxLoads != 0 || rep.SafeTxStores != 0 {
		t.Fatalf("shared counter wrongly marked safe: %v", rep)
	}
}

// TestReadOnlySharedLoadsSafe: loads from a setup-initialized table are safe
// inside TXs even though the table is shared.
func TestReadOnlySharedLoadsSafe(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("table", 32)
	b.Global("out", 8)
	w := b.ThreadBody("worker", 1)
	w.TxBegin()
	tp := w.GlobalAddr("table")
	idx := w.MulI(w.Param(0), 8)
	v := w.Load(w.Add(tp, idx), 0)
	op := w.GlobalAddr("out")
	w.Store(op, 0, v)
	w.TxEnd()
	w.RetVoid()
	mn := b.Function("main", 0)
	tp2 := mn.GlobalAddr("table")
	c := mn.C(5)
	mn.Store(tp2, 0, c)
	n := mn.C(4)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	rep := run(t, b)
	if rep.SafeTxLoads != 1 {
		t.Fatalf("read-only shared load not marked safe: %v", rep)
	}
	if rep.SafeTxStores != 0 {
		t.Fatalf("store to out must stay unsafe: %v", rep)
	}
}

// TestMallocInsideTxInitializing: memory allocated inside the TX is fresh,
// so its first stores are initializing.
func TestMallocInsideTxInitializing(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("head", 1)
	w := b.ThreadBody("worker", 1)
	w.TxBegin()
	node := w.MallocI(16)
	w.Store(node, 0, w.Param(0)) // initializing store to fresh node
	h := w.GlobalAddr("head")
	w.Store(h, 0, node) // publishing: makes node shared-reachable
	w.TxEnd()
	w.RetVoid()
	mn := b.Function("main", 0)
	n := mn.C(4)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	rep := run(t, b)
	// node escapes into the global head -> shared-reachable -> NOT
	// thread-private -> store stays unsafe. This mirrors Listing 2's
	// myPathVectorPtr.
	if rep.SafeTxStores != 0 {
		t.Fatalf("escaping node store must be unsafe: %v", rep)
	}
}

// TestPrivateScratchFreedInTx: a scratch buffer malloc'd, used, and freed
// within the region without escaping — stores safe.
func TestPrivateScratchFreedInTx(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("out", 1)
	w := b.ThreadBody("worker", 1)
	w.TxBegin()
	buf := w.MallocI(64)
	w.Store(buf, 0, w.Param(0))
	v := w.Load(buf, 0)
	o := w.GlobalAddr("out")
	w.Store(o, 0, v)
	w.FreeI(buf, 64)
	w.TxEnd()
	w.RetVoid()
	mn := b.Function("main", 0)
	n := mn.C(4)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	rep := run(t, b)
	if rep.SafeTxStores != 1 {
		t.Fatalf("private scratch store should be safe: %v", rep)
	}
	if rep.SafeTxLoads != 1 {
		t.Fatalf("private scratch load should be safe: %v", rep)
	}
}

// TestModuleVerifiesAfterPass ensures mutation keeps the module valid.
func TestModuleVerifiesAfterPass(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("g", 4)
	helper := b.Function("helper", 1)
	v := helper.C(1)
	helper.Store(helper.Param(0), 0, v)
	helper.RetVoid()
	w := b.ThreadBody("worker", 1)
	buf := w.MallocI(32)
	w.TxBegin()
	w.CallVoid("helper", buf)
	w.TxEnd()
	w.FreeI(buf, 32)
	w.RetVoid()
	mn := b.Function("main", 0)
	n := mn.C(2)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	run(t, b)
	if err := b.M.Verify(); err != nil {
		t.Fatalf("module invalid after classify: %v", err)
	}
}

// TestRecursionConservative: recursive helpers fall back to unsafe.
func TestRecursionConservative(t *testing.T) {
	b := ir.NewBuilder("m")
	rec := b.Function("rec", 2) // (ptr, depth)
	again := rec.NewBlock("again")
	stop := rec.NewBlock("stop")
	v := rec.Load(rec.Param(0), 0) // load-before-store through recursion
	rec.Store(rec.Param(0), 0, v)
	c := rec.Cmp(ir.CmpGT, rec.Param(1), rec.C(0))
	rec.CondBr(c, again, stop)
	rec.SetBlock(again)
	d := rec.Sub(rec.Param(1), rec.C(1))
	rec.CallVoid("rec", rec.Param(0), d)
	rec.RetVoid()
	rec.SetBlock(stop)
	rec.RetVoid()

	w := b.ThreadBody("worker", 1)
	buf := w.MallocI(8)
	w.TxBegin()
	w.CallVoid("rec", buf, w.Param(0))
	w.TxEnd()
	w.FreeI(buf, 8)
	w.RetVoid()
	mn := b.Function("main", 0)
	n := mn.C(2)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	rep := run(t, b)
	if rep.SafeTxStores != 0 {
		t.Fatalf("recursive load-before-store must stay unsafe: %v", rep)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{TxLoads: 3, SafeTxLoads: 1, TxStores: 2, SafeTxStores: 1, Replicated: 1}
	s := r.String()
	if !strings.Contains(s, "clones: 1") {
		t.Errorf("report string %q", s)
	}
}
