package classify

import (
	"hintm/internal/alias"
	"hintm/internal/cfg"
	"hintm/internal/ir"
)

// fa is a function's first-access summary for one abstract object: how the
// function touches the object relative to the defined-before-used discipline
// that makes stores initializing (paper §III/§IV-A).
type fa uint8

const (
	// faNone: the function never accesses the object.
	faNone fa = iota
	// faTouched: accessed, never load-before-store on any internal path,
	// but not guaranteed stored on every path to return.
	faTouched
	// faDefMust: on every path, the first access is a store, and the object
	// is must-stored at every return ("defines the object").
	faDefMust
	// faUse: some path may load the object before any store (or analysis
	// could not rule it out) — stores to it cannot be initializing.
	faUse
)

// summaries computes first-access summaries for every function, bottom-up
// over the call graph. Functions on call-graph cycles get the conservative
// faUse for every object they may transitively access.
func (cl *classifier) computeSummaries() {
	state := make(map[string]int) // 0 unvisited, 1 on stack, 2 done
	var visit func(name string)
	visit = func(name string) {
		switch state[name] {
		case 1:
			// Cycle: poison every member conservatively; the members will
			// be finalized as faUse-for-accessed when their own visit
			// completes (flowFunc falls back for on-stack callees).
			return
		case 2:
			return
		}
		f := cl.m.Func(name)
		if f == nil {
			return
		}
		state[name] = 1
		f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
			if in.Op == ir.OpCall {
				visit(in.Sym)
			}
		})
		cl.summaries[name] = cl.flowFunc(f, state)
		state[name] = 2
	}
	for _, f := range cl.m.Funcs {
		visit(f.Name)
	}
}

// calleeSummary returns the callee's summary; for callees still on the DFS
// stack (recursion) it synthesizes faUse for everything the callee may
// access.
func (cl *classifier) calleeSummary(name string, state map[string]int) map[alias.ObjID]fa {
	if s, ok := cl.summaries[name]; ok {
		return s
	}
	if state[name] == 1 {
		syn := make(map[alias.ObjID]fa)
		for o := range cl.accessedClosure(name) {
			syn[o] = faUse
		}
		return syn
	}
	return nil
}

// accessedClosure returns every object a function may access, transitively
// through calls (cycle-tolerant).
func (cl *classifier) accessedClosure(name string) alias.ObjSet {
	if s, ok := cl.accessed[name]; ok {
		return s
	}
	set := make(alias.ObjSet)
	cl.accessed[name] = set // placed first so cycles terminate
	f := cl.m.Func(name)
	if f == nil {
		return set
	}
	f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		switch {
		case in.IsMemAccess():
			for o := range cl.al.AccessedObjects(f, in) {
				set[o] = struct{}{}
			}
		case in.Op == ir.OpCall:
			for o := range cl.accessedClosure(in.Sym) {
				set[o] = struct{}{}
			}
		}
	})
	return set
}

// mustSet is the must-stored-since-definition-point dataflow fact: the set
// of objects that have definitely been (re)stored on every path.
type mustSet map[alias.ObjID]bool

func (s mustSet) clone() mustSet {
	c := make(mustSet, len(s))
	for k, v := range s {
		if v {
			c[k] = true
		}
	}
	return c
}

func (s mustSet) intersect(o mustSet) (mustSet, bool) {
	changed := false
	for k := range s {
		if !o[k] {
			delete(s, k)
			changed = true
		}
	}
	return s, changed
}

// flowFunc runs the must-stored forward dataflow over f and derives
// (a) f's first-access summary and (b) the per-transaction load-before-store
// facts (txBad) for transactions opened in f.
//
// A TxBegin resets the must-stored set: within a transaction, only stores
// executed after the TxBegin count as (re)initializing, because an abort
// rolls architectural and memory state back to the TxBegin. This makes the
// whole-function summary slightly conservative for code after a transaction,
// which is harmless: TX-containing functions are thread bodies whose
// summaries are never consulted at call sites.
func (cl *classifier) flowFunc(f *ir.Func, state map[string]int) map[alias.ObjID]fa {
	g := cfg.New(f)
	region := cl.txRegions[f.Name]

	in := make(map[*ir.Block]mustSet)
	in[g.RPO[0]] = mustSet{}

	transfer := func(s mustSet, instr *ir.Instr) {
		switch instr.Op {
		case ir.OpStore:
			p := cl.al.AccessedObjects(f, instr)
			if len(p) == 1 {
				s[p.Sorted()[0]] = true
			}
		case ir.OpAlloca, ir.OpMalloc:
			if o, ok := cl.al.ObjectForInstr(instr.ID); ok {
				delete(s, o)
			}
		case ir.OpCall:
			for o, sum := range cl.calleeSummary(instr.Sym, state) {
				if sum == faDefMust {
					s[o] = true
				}
			}
		case ir.OpTxBegin:
			for o := range s {
				delete(s, o)
			}
		}
	}

	// Fixpoint.
	for changed := true; changed; {
		changed = false
		for _, b := range g.RPO {
			st, ok := in[b]
			if !ok {
				continue
			}
			cur := st.clone()
			for _, instr := range b.Instrs {
				transfer(cur, instr)
			}
			for _, succ := range g.Succs[b] {
				prev, seen := in[succ]
				if !seen {
					in[succ] = cur.clone()
					changed = true
					continue
				}
				if _, ch := prev.intersect(cur); ch {
					changed = true
				}
			}
		}
	}

	// Final sweep: accessed / bad / txBad / must-stored-at-returns.
	accessed := make(map[alias.ObjID]bool)
	bad := make(map[alias.ObjID]bool)
	retMust := mustSet(nil) // intersection across returns
	for _, b := range g.RPO {
		st, ok := in[b]
		if !ok {
			continue
		}
		cur := st.clone()
		for _, instr := range b.Instrs {
			txID := 0
			if region != nil {
				txID = region[instr]
			}
			switch instr.Op {
			case ir.OpLoad:
				for o := range cl.al.AccessedObjects(f, instr) {
					accessed[o] = true
					if !cur[o] {
						bad[o] = true
						if txID != 0 {
							cl.markTxBad(txID, o)
						}
					}
				}
			case ir.OpStore:
				for o := range cl.al.AccessedObjects(f, instr) {
					accessed[o] = true
				}
			case ir.OpCall:
				for o, sum := range cl.calleeSummary(instr.Sym, state) {
					if sum == faNone {
						continue
					}
					accessed[o] = true
					if sum == faUse && !cur[o] {
						bad[o] = true
						if txID != 0 {
							cl.markTxBad(txID, o)
						}
					}
				}
			case ir.OpRet:
				if retMust == nil {
					retMust = cur.clone()
				} else {
					retMust.intersect(cur)
				}
			}
			transfer(cur, instr)
		}
	}

	sum := make(map[alias.ObjID]fa)
	for o := range accessed {
		switch {
		case bad[o]:
			sum[o] = faUse
		case retMust != nil && retMust[o]:
			sum[o] = faDefMust
		default:
			sum[o] = faTouched
		}
	}
	return sum
}

func (cl *classifier) markTxBad(txID int, o alias.ObjID) {
	m := cl.txBad[txID]
	if m == nil {
		m = make(map[alias.ObjID]bool)
		cl.txBad[txID] = m
	}
	m[o] = true
}

// txInitSafe reports whether stores to object o inside transaction txID obey
// the defined-before-used discipline.
func (cl *classifier) txInitSafe(txID int, o alias.ObjID) bool {
	return !cl.txBad[txID][o]
}
