package escape

import (
	"testing"

	"hintm/internal/alias"
	"hintm/internal/ir"
)

func analyze(t *testing.T, b *ir.Builder) *Result {
	t.Helper()
	if err := b.M.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return Analyze(b.M, alias.Analyze(b.M))
}

func objOf(t *testing.T, r *Result, f *ir.FuncBuilder, reg ir.Reg) alias.ObjID {
	t.Helper()
	s := r.A.PointsTo(f.F, reg).Sorted()
	if len(s) != 1 {
		t.Fatalf("expected singleton points-to, got %v", s)
	}
	return s[0]
}

// Listing-2 analogue: worker mallocs a private grid (freed at thread end)
// and a vector that is published into a global list.
func buildListing2(t *testing.T) (*ir.Builder, *ir.FuncBuilder, ir.Reg, ir.Reg) {
	b := ir.NewBuilder("listing2")
	b.Global("globalList", 64)

	w := b.ThreadBody("worker", 1)
	grid := w.MallocI(256) // thread-private scratchpad
	vec := w.MallocI(64)   // escapes into globalList
	gl := w.GlobalAddr("globalList")
	w.Store(gl, 0, vec) // publish vec
	other := w.Load(gl, 0)
	zero := w.C(0)
	w.Store(other, 0, zero) // another thread mutates published vectors
	v := w.C(7)
	w.Store(grid, 0, v)
	w.FreeI(grid, 256)
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(4)
	mn.Parallel(n, "worker")
	mn.RetVoid()
	return b, w, grid, vec
}

func TestThreadPrivateHeapScratchpad(t *testing.T) {
	b, w, grid, vec := buildListing2(t)
	r := analyze(t, b)
	gridObj := objOf(t, r, w, grid)
	vecObj := objOf(t, r, w, vec)

	if !r.ThreadPrivate(gridObj) {
		t.Error("freed, unescaping scratchpad should be thread-private")
	}
	if r.ThreadPrivate(vecObj) {
		t.Error("published vector must not be thread-private")
	}
	if !r.SharedReach[vecObj] {
		t.Error("published vector should be shared-reachable")
	}
	if r.SafeLocation(vecObj) {
		t.Error("published+written vector must be unsafe")
	}
	if !r.SafeLocation(gridObj) {
		t.Error("scratchpad should be a safe location")
	}
}

func TestUnfreedMallocNotThreadPrivate(t *testing.T) {
	// Algorithm 1 criterion (ii): no de-allocation in region -> not private.
	b := ir.NewBuilder("m")
	w := b.ThreadBody("worker", 1)
	p := w.MallocI(64)
	v := w.C(1)
	w.Store(p, 0, v)
	w.RetVoid()
	mn := b.Function("main", 0)
	n := mn.C(2)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	r := analyze(t, b)
	obj := objOf(t, r, w, p)
	if r.ThreadPrivate(obj) {
		t.Error("unfreed heap object should fail Algorithm 1")
	}
}

func TestStackAllocaThreadPrivateWithoutFree(t *testing.T) {
	b := ir.NewBuilder("m")
	w := b.ThreadBody("worker", 1)
	slot := w.Alloca(4)
	v := w.C(1)
	w.Store(slot, 0, v)
	w.RetVoid()
	mn := b.Function("main", 0)
	n := mn.C(2)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	r := analyze(t, b)
	obj := objOf(t, r, w, slot)
	if !r.ThreadPrivate(obj) {
		t.Error("non-escaping alloca in thread body should be private")
	}
}

func TestAllocaEscapingThroughCallStaysPrivate(t *testing.T) {
	// Passing an alloca by reference to a callee that only stores into it
	// does not make it shared (capture-tracking case from Listing 1).
	b := ir.NewBuilder("m")
	init := b.Function("init", 1)
	v := init.C(3)
	init.Store(init.Param(0), 0, v)
	init.RetVoid()

	w := b.ThreadBody("worker", 1)
	slot := w.Alloca(1)
	w.CallVoid("init", slot)
	w.RetVoid()

	mn := b.Function("main", 0)
	n := mn.C(2)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	r := analyze(t, b)
	obj := objOf(t, r, w, slot)
	if !r.ThreadPrivate(obj) {
		t.Error("call-by-reference alone must not defeat privacy")
	}
	if !r.ParallelFuncs["init"] {
		t.Error("callee of thread body should be in parallel region")
	}
}

func TestReadOnlySharedGlobal(t *testing.T) {
	// main initializes a table; workers only read it.
	b := ir.NewBuilder("m")
	b.Global("table", 128)
	b.Global("sink", 1)
	w := b.ThreadBody("worker", 1)
	tp := w.GlobalAddr("table")
	x := w.Load(tp, 0)
	sink := w.GlobalAddr("sink")
	w.Store(sink, 0, x)
	w.RetVoid()
	mn := b.Function("main", 0)
	tp2 := mn.GlobalAddr("table")
	c := mn.C(9)
	mn.Store(tp2, 0, c) // setup write, outside parallel region
	n := mn.C(4)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	r := analyze(t, b)
	tblObj, _ := r.A.ObjectForGlobal("table")
	sinkObj, _ := r.A.ObjectForGlobal("sink")
	if !r.ReadOnlyShared(tblObj) {
		t.Error("table written only during setup should be read-only shared")
	}
	if !r.SafeLocation(tblObj) {
		t.Error("read-only shared table should be safe")
	}
	if r.ReadOnlyShared(sinkObj) || r.SafeLocation(sinkObj) {
		t.Error("sink written in region must be unsafe")
	}
}

func TestSharedViaParallelArg(t *testing.T) {
	// Heap object created in main and passed to workers is shared.
	b := ir.NewBuilder("m")
	w := b.ThreadBody("worker", 2)
	v := w.C(1)
	w.Store(w.Param(1), 0, v)
	w.RetVoid()
	mn := b.Function("main", 0)
	buf := mn.MallocI(512)
	n := mn.C(4)
	mn.Parallel(n, "worker", buf)
	mn.RetVoid()

	r := analyze(t, b)
	obj := objOf(t, r, mn, buf)
	if !r.SharedReach[obj] {
		t.Error("parallel arg should be shared-reachable")
	}
	if r.SafeLocation(obj) {
		t.Error("written shared arg must be unsafe")
	}
}

func TestAllSafeRequiresNonEmpty(t *testing.T) {
	b := ir.NewBuilder("m")
	mn := b.Function("main", 0)
	mn.RetVoid()
	r := analyze(t, b)
	if r.AllSafe(alias.ObjSet{}) {
		t.Error("empty set must be conservatively unsafe")
	}
	if r.AllThreadPrivate(alias.ObjSet{}) {
		t.Error("empty set must be conservatively non-private")
	}
}

func TestMainOnlyAllocaNotInRegion(t *testing.T) {
	b := ir.NewBuilder("m")
	w := b.ThreadBody("worker", 1)
	w.RetVoid()
	mn := b.Function("main", 0)
	slot := mn.Alloca(1)
	c := mn.C(1)
	mn.Store(slot, 0, c)
	n := mn.C(2)
	mn.Parallel(n, "worker")
	mn.RetVoid()

	r := analyze(t, b)
	obj := objOf(t, r, mn, slot)
	if r.AllocatedInRegion[obj] {
		t.Error("main's alloca is outside the parallel region")
	}
	if r.ThreadPrivate(obj) {
		t.Error("setup-only allocation should not be classified thread-private")
	}
}
