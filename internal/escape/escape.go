// Package escape computes, on top of the alias analysis, the object-level
// sharing facts HinTM's static classification needs (paper §IV-A and
// Algorithm 1):
//
//   - which abstract objects are reachable from shared roots (globals and
//     Parallel arguments) through the heap graph — candidates for
//     inter-thread sharing;
//   - which objects may be written inside the parallel region;
//   - which malloc sites are freed within the parallel region (Algorithm 1's
//     de-allocation criterion);
//   - hence which objects are thread-private and which are read-only shared,
//     the two classes of safe memory locations.
package escape

import (
	"hintm/internal/alias"
	"hintm/internal/ir"
)

// Result holds per-object sharing facts for one module.
type Result struct {
	A *alias.Analysis

	// ParallelFuncs is the set of functions reachable from any thread body
	// (the multithreaded region's code).
	ParallelFuncs map[string]bool

	// SharedReach marks objects reachable from shared roots.
	SharedReach map[alias.ObjID]bool
	// WrittenInParallel marks objects that some store inside the parallel
	// region may target.
	WrittenInParallel map[alias.ObjID]bool
	// FreedInRegion marks malloc objects freed inside the parallel region.
	FreedInRegion map[alias.ObjID]bool
	// AllocatedInRegion marks alloca/malloc objects whose allocation site is
	// inside the parallel region.
	AllocatedInRegion map[alias.ObjID]bool
}

// Analyze derives sharing facts from the module and its alias analysis.
func Analyze(m *ir.Module, a *alias.Analysis) *Result {
	r := &Result{
		A:                 a,
		ParallelFuncs:     parallelFuncs(m),
		SharedReach:       make(map[alias.ObjID]bool),
		WrittenInParallel: make(map[alias.ObjID]bool),
		FreedInRegion:     make(map[alias.ObjID]bool),
		AllocatedInRegion: make(map[alias.ObjID]bool),
	}
	r.computeSharedReach(m)
	r.scanParallelRegion(m)
	return r
}

// parallelFuncs returns every function reachable through calls from any
// thread-body function.
func parallelFuncs(m *ir.Module) map[string]bool {
	reach := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if reach[name] {
			return
		}
		f := m.Func(name)
		if f == nil {
			return
		}
		reach[name] = true
		f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
			if in.Op == ir.OpCall {
				visit(in.Sym)
			}
		})
	}
	for _, f := range m.Funcs {
		if f.ThreadBody {
			visit(f.Name)
		}
	}
	return reach
}

// computeSharedReach seeds shared roots — every global object plus every
// object passed to a Parallel as a shared argument — and closes over the
// heap contents graph.
func (r *Result) computeSharedReach(m *ir.Module) {
	var work []alias.ObjID
	seed := func(o alias.ObjID) {
		if !r.SharedReach[o] {
			r.SharedReach[o] = true
			work = append(work, o)
		}
	}
	for _, g := range m.Globals {
		if id, ok := r.A.ObjectForGlobal(g.Name); ok {
			seed(id)
		}
	}
	m.ForEachInstr(func(f *ir.Func, _ *ir.Block, in *ir.Instr) {
		if in.Op != ir.OpParallel {
			return
		}
		for _, arg := range in.Args {
			for o := range r.A.PointsTo(f, arg) {
				seed(o)
			}
		}
	})
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		for inner := range r.A.Contents(o) {
			seed(inner)
		}
	}
}

// scanParallelRegion records write and free and allocation facts for code
// inside the parallel region.
func (r *Result) scanParallelRegion(m *ir.Module) {
	for _, f := range m.Funcs {
		if !r.ParallelFuncs[f.Name] {
			continue
		}
		f.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
			switch in.Op {
			case ir.OpStore:
				for o := range r.A.AccessedObjects(f, in) {
					r.WrittenInParallel[o] = true
				}
			case ir.OpFree:
				for o := range r.A.PointsTo(f, in.A) {
					if r.A.Object(o).Kind == alias.ObjMalloc {
						r.FreedInRegion[o] = true
					}
				}
			case ir.OpAlloca, ir.OpMalloc:
				if id, ok := r.A.ObjectForInstr(in.ID); ok {
					r.AllocatedInRegion[id] = true
				}
			}
		})
	}
}

// ThreadPrivate reports whether object o is provably private to one thread:
// allocated inside the parallel region, never reachable from shared roots,
// and (for heap objects, per Algorithm 1) freed within the region.
func (r *Result) ThreadPrivate(o alias.ObjID) bool {
	if r.SharedReach[o] || !r.AllocatedInRegion[o] {
		return false
	}
	obj := r.A.Object(o)
	switch obj.Kind {
	case alias.ObjAlloca:
		return true
	case alias.ObjMalloc:
		return r.FreedInRegion[o]
	}
	return false
}

// ReadOnlyShared reports whether o may be shared but is never written inside
// the parallel region, making loads from it safe.
func (r *Result) ReadOnlyShared(o alias.ObjID) bool {
	return r.SharedReach[o] && !r.WrittenInParallel[o]
}

// SafeLocation reports whether o satisfies the paper's §III definition of a
// safe memory location.
func (r *Result) SafeLocation(o alias.ObjID) bool {
	return r.ThreadPrivate(o) || r.ReadOnlyShared(o)
}

// AllSafe reports whether every object in the set is a safe location and the
// set is non-empty (an empty set means unresolved provenance — conservative
// unsafe).
func (r *Result) AllSafe(objs alias.ObjSet) bool {
	if len(objs) == 0 {
		return false
	}
	for o := range objs {
		if !r.SafeLocation(o) {
			return false
		}
	}
	return true
}

// AllThreadPrivate reports whether every object in the non-empty set is
// thread-private (the requirement for safe stores).
func (r *Result) AllThreadPrivate(objs alias.ObjSet) bool {
	if len(objs) == 0 {
		return false
	}
	for o := range objs {
		if !r.ThreadPrivate(o) {
			return false
		}
	}
	return true
}
