// Package alias implements an inclusion-based (Andersen-style),
// field-insensitive, context-insensitive points-to analysis over TIR
// modules. It underpins HinTM's static classification the way the paper's
// "pointer alias analysis pass" underpins its LLVM passes: every memory
// instruction's address register resolves to a set of abstract objects
// (allocation sites), over which escape and safety properties are computed.
package alias

import (
	"fmt"
	"sort"

	"hintm/internal/ir"
)

// ObjKind distinguishes abstract object classes.
type ObjKind uint8

// Abstract object kinds.
const (
	ObjGlobal ObjKind = iota
	ObjAlloca
	ObjMalloc
)

func (k ObjKind) String() string {
	switch k {
	case ObjGlobal:
		return "global"
	case ObjAlloca:
		return "alloca"
	case ObjMalloc:
		return "malloc"
	}
	return "?"
}

// ObjID indexes an abstract object within an Analysis.
type ObjID int

// Object is one abstract allocation site.
type Object struct {
	ID   ObjID
	Kind ObjKind
	// Sym is the global name for ObjGlobal objects.
	Sym string
	// Func is the containing function for alloca/malloc sites.
	Func string
	// InstrID is the allocation instruction's module-unique id.
	InstrID int
}

// String renders a diagnostic label.
func (o *Object) String() string {
	if o.Kind == ObjGlobal {
		return "@" + o.Sym
	}
	return fmt.Sprintf("%s#%d(%s)", o.Kind, o.InstrID, o.Func)
}

// ObjSet is a set of abstract objects.
type ObjSet map[ObjID]struct{}

func (s ObjSet) add(o ObjID) bool {
	if _, ok := s[o]; ok {
		return false
	}
	s[o] = struct{}{}
	return true
}

// Has reports membership.
func (s ObjSet) Has(o ObjID) bool { _, ok := s[o]; return ok }

// Sorted returns the set's members in increasing order.
func (s ObjSet) Sorted() []ObjID {
	out := make([]ObjID, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// node is a constraint-graph variable (a register, a function's return
// value, or an object's contents).
type node int

// Analysis holds the points-to results for one module.
type Analysis struct {
	M       *ir.Module
	objects []*Object

	// node numbering
	regNode  map[string]map[ir.Reg]node // func -> reg -> node
	retNode  map[string]node
	contNode map[ObjID]node
	numNodes int

	pts   []ObjSet // per node
	succs [][]node // copy edges: pts(dst) ⊇ pts(src) => succs[src] contains dst

	// deferred load/store constraints, re-fired as pts sets grow
	loads  []complexCon // dst ⊇ contents(*a)
	stores []complexCon // contents(*a) ⊇ src

	objByInstr map[int]ObjID
	objBySym   map[string]ObjID
}

type complexCon struct {
	addr  node // the pointer node
	other node // dst (load) or src (store)
}

// Analyze runs the analysis to a fixed point.
func Analyze(m *ir.Module) *Analysis {
	a := &Analysis{
		M:          m,
		regNode:    make(map[string]map[ir.Reg]node),
		retNode:    make(map[string]node),
		contNode:   make(map[ObjID]node),
		objByInstr: make(map[int]ObjID),
		objBySym:   make(map[string]ObjID),
	}
	a.collectObjects()
	a.buildConstraints()
	a.solve()
	return a
}

func (a *Analysis) newNode() node {
	n := node(a.numNodes)
	a.numNodes++
	a.pts = append(a.pts, make(ObjSet))
	a.succs = append(a.succs, nil)
	return n
}

func (a *Analysis) reg(f *ir.Func, r ir.Reg) node {
	regs := a.regNode[f.Name]
	if regs == nil {
		regs = make(map[ir.Reg]node)
		a.regNode[f.Name] = regs
	}
	n, ok := regs[r]
	if !ok {
		n = a.newNode()
		regs[r] = n
	}
	return n
}

func (a *Analysis) ret(fname string) node {
	n, ok := a.retNode[fname]
	if !ok {
		n = a.newNode()
		a.retNode[fname] = n
	}
	return n
}

func (a *Analysis) contents(o ObjID) node {
	n, ok := a.contNode[o]
	if !ok {
		n = a.newNode()
		a.contNode[o] = n
	}
	return n
}

func (a *Analysis) addObject(o *Object) ObjID {
	o.ID = ObjID(len(a.objects))
	a.objects = append(a.objects, o)
	return o.ID
}

func (a *Analysis) collectObjects() {
	for _, g := range a.M.Globals {
		id := a.addObject(&Object{Kind: ObjGlobal, Sym: g.Name})
		a.objBySym[g.Name] = id
	}
	a.M.ForEachInstr(func(f *ir.Func, _ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpAlloca:
			a.objByInstr[in.ID] = a.addObject(&Object{Kind: ObjAlloca, Func: f.Name, InstrID: in.ID})
		case ir.OpMalloc:
			a.objByInstr[in.ID] = a.addObject(&Object{Kind: ObjMalloc, Func: f.Name, InstrID: in.ID})
		}
	})
}

// copyEdge records pts(dst) ⊇ pts(src).
func (a *Analysis) copyEdge(dst, src node) {
	a.succs[src] = append(a.succs[src], dst)
}

func (a *Analysis) buildConstraints() {
	a.M.ForEachInstr(func(f *ir.Func, _ *ir.Block, in *ir.Instr) {
		switch in.Op {
		case ir.OpGlobalAddr:
			a.pts[a.reg(f, in.Dst)].add(a.objBySym[in.Sym])
		case ir.OpAlloca, ir.OpMalloc:
			a.pts[a.reg(f, in.Dst)].add(a.objByInstr[in.ID])
		case ir.OpMov:
			a.copyEdge(a.reg(f, in.Dst), a.reg(f, in.A))
		case ir.OpBin:
			// Pointer arithmetic: the result may point wherever either
			// operand points.
			a.copyEdge(a.reg(f, in.Dst), a.reg(f, in.A))
			a.copyEdge(a.reg(f, in.Dst), a.reg(f, in.B))
		case ir.OpLoad:
			a.loads = append(a.loads, complexCon{
				addr: a.reg(f, in.A), other: a.reg(f, in.Dst)})
		case ir.OpStore:
			a.stores = append(a.stores, complexCon{
				addr: a.reg(f, in.A), other: a.reg(f, in.B)})
		case ir.OpCall:
			callee := a.M.Func(in.Sym)
			if callee == nil {
				return
			}
			for i, arg := range in.Args {
				a.copyEdge(a.reg(callee, callee.Params[i]), a.reg(f, arg))
			}
			if in.Dst != ir.NoReg {
				a.copyEdge(a.reg(f, in.Dst), a.ret(in.Sym))
			}
		case ir.OpRet:
			if in.A != ir.NoReg {
				a.copyEdge(a.ret(f.Name), a.reg(f, in.A))
			}
		case ir.OpParallel:
			body := a.M.Func(in.Sym)
			if body == nil {
				return
			}
			for i, arg := range in.Args {
				// Params[0] is the tid; shared args bind from Params[1].
				a.copyEdge(a.reg(body, body.Params[i+1]), a.reg(f, arg))
			}
		}
	})
}

func (a *Analysis) solve() {
	changed := true
	for changed {
		changed = false
		// Propagate along copy edges to fixpoint.
		prop := true
		for prop {
			prop = false
			for src := 0; src < a.numNodes; src++ {
				set := a.pts[src]
				if len(set) == 0 {
					continue
				}
				for _, dst := range a.succs[src] {
					for o := range set {
						if a.pts[dst].add(o) {
							prop = true
						}
					}
				}
			}
		}
		// Expand load/store constraints into new copy edges.
		for _, lc := range a.loads {
			for o := range a.pts[lc.addr] {
				if a.ensureEdge(a.contents(o), lc.other, true) {
					changed = true
				}
			}
		}
		for _, sc := range a.stores {
			for o := range a.pts[sc.addr] {
				if a.ensureEdge(sc.other, a.contents(o), false) {
					changed = true
				}
			}
		}
	}
}

// ensureEdge adds a copy edge (from→to for loads means contents→dst;
// for stores src→contents) if absent. The fromIsContents flag only
// disambiguates the argument order at call sites for readability.
func (a *Analysis) ensureEdge(from, to node, fromIsContents bool) bool {
	_ = fromIsContents
	for _, existing := range a.succs[from] {
		if existing == to {
			return false
		}
	}
	a.succs[from] = append(a.succs[from], to)
	// Seed immediate propagation so the outer loop converges.
	grew := false
	for o := range a.pts[from] {
		if a.pts[to].add(o) {
			grew = true
		}
	}
	return grew || len(a.pts[from]) > 0
}

// PointsTo returns the object set register r may point to in f.
func (a *Analysis) PointsTo(f *ir.Func, r ir.Reg) ObjSet {
	regs := a.regNode[f.Name]
	if regs == nil {
		return nil
	}
	n, ok := regs[r]
	if !ok {
		return nil
	}
	return a.pts[n]
}

// Contents returns the objects that pointers stored inside o may target.
func (a *Analysis) Contents(o ObjID) ObjSet {
	n, ok := a.contNode[o]
	if !ok {
		return nil
	}
	return a.pts[n]
}

// Object returns the object record for id.
func (a *Analysis) Object(id ObjID) *Object { return a.objects[id] }

// Objects returns all abstract objects.
func (a *Analysis) Objects() []*Object { return a.objects }

// ObjectForInstr returns the abstract object allocated by the given
// Alloca/Malloc instruction id, if any.
func (a *Analysis) ObjectForInstr(instrID int) (ObjID, bool) {
	o, ok := a.objByInstr[instrID]
	return o, ok
}

// ObjectForGlobal returns the abstract object of global sym, if any.
func (a *Analysis) ObjectForGlobal(sym string) (ObjID, bool) {
	o, ok := a.objBySym[sym]
	return o, ok
}

// AccessedObjects returns the object set a memory instruction may touch,
// i.e. the points-to set of its address register.
func (a *Analysis) AccessedObjects(f *ir.Func, in *ir.Instr) ObjSet {
	if !in.IsMemAccess() {
		return nil
	}
	return a.PointsTo(f, in.A)
}
