package alias

import (
	"testing"

	"hintm/internal/ir"
)

func mustVerify(t *testing.T, b *ir.Builder) {
	t.Helper()
	if err := b.M.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestGlobalAddrPointsToGlobal(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("g", 4)
	f := b.Function("main", 0)
	gp := f.GlobalAddr("g")
	f.RetVoid()
	mustVerify(t, b)

	a := Analyze(b.M)
	pts := a.PointsTo(f.F, gp)
	gid, _ := a.ObjectForGlobal("g")
	if len(pts) != 1 || !pts.Has(gid) {
		t.Fatalf("pts(gp) = %v, want {@g}", pts.Sorted())
	}
}

func TestMovAndArithmeticPropagate(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("g", 4)
	f := b.Function("main", 0)
	gp := f.GlobalAddr("g")
	cp := f.Mov(gp)
	off := f.AddI(cp, 16)
	f.RetVoid()
	mustVerify(t, b)

	a := Analyze(b.M)
	gid, _ := a.ObjectForGlobal("g")
	if !a.PointsTo(f.F, off).Has(gid) {
		t.Fatal("pointer arithmetic lost provenance")
	}
}

func TestStoreLoadThroughMemory(t *testing.T) {
	// slot = alloca; *slot = &g; p = *slot; p must point to g.
	b := ir.NewBuilder("m")
	b.Global("g", 1)
	f := b.Function("main", 0)
	slot := f.Alloca(1)
	gp := f.GlobalAddr("g")
	f.Store(slot, 0, gp)
	p := f.Load(slot, 0)
	f.RetVoid()
	mustVerify(t, b)

	a := Analyze(b.M)
	gid, _ := a.ObjectForGlobal("g")
	if !a.PointsTo(f.F, p).Has(gid) {
		t.Fatalf("load through memory lost target: %v", a.PointsTo(f.F, p).Sorted())
	}
}

func TestCallParamAndReturnFlow(t *testing.T) {
	// id(p) { return p }; main: q = id(&g)
	b := ir.NewBuilder("m")
	b.Global("g", 1)
	id := b.Function("id", 1)
	id.Ret(id.Param(0))
	f := b.Function("main", 0)
	gp := f.GlobalAddr("g")
	q := f.Call("id", gp)
	f.RetVoid()
	mustVerify(t, b)

	a := Analyze(b.M)
	gid, _ := a.ObjectForGlobal("g")
	if !a.PointsTo(f.F, q).Has(gid) {
		t.Fatal("return flow lost target")
	}
	if !a.PointsTo(id.F, id.Param(0)).Has(gid) {
		t.Fatal("param flow lost target")
	}
}

func TestParallelArgFlow(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("shared", 8)
	w := b.ThreadBody("worker", 2)
	w.RetVoid()
	f := b.Function("main", 0)
	sp := f.GlobalAddr("shared")
	n := f.C(4)
	f.Parallel(n, "worker", sp)
	f.RetVoid()
	mustVerify(t, b)

	a := Analyze(b.M)
	gid, _ := a.ObjectForGlobal("shared")
	if !a.PointsTo(w.F, w.Param(1)).Has(gid) {
		t.Fatal("parallel arg flow lost target")
	}
	if len(a.PointsTo(w.F, w.Param(0))) != 0 {
		t.Fatal("tid param should not be a pointer")
	}
}

func TestMallocSitesDistinct(t *testing.T) {
	b := ir.NewBuilder("m")
	f := b.Function("main", 0)
	p1 := f.MallocI(64)
	p2 := f.MallocI(64)
	f.RetVoid()
	mustVerify(t, b)

	a := Analyze(b.M)
	s1 := a.PointsTo(f.F, p1)
	s2 := a.PointsTo(f.F, p2)
	if len(s1) != 1 || len(s2) != 1 {
		t.Fatalf("sizes: %d %d", len(s1), len(s2))
	}
	if s1.Sorted()[0] == s2.Sorted()[0] {
		t.Fatal("distinct malloc sites merged")
	}
}

func TestHeapGraphContents(t *testing.T) {
	// outer = malloc; inner = malloc; *outer = inner
	// Contents(outer) must include inner's object.
	b := ir.NewBuilder("m")
	f := b.Function("main", 0)
	outer := f.MallocI(8)
	inner := f.MallocI(8)
	f.Store(outer, 0, inner)
	f.RetVoid()
	mustVerify(t, b)

	a := Analyze(b.M)
	outerObj := a.PointsTo(f.F, outer).Sorted()[0]
	innerObj := a.PointsTo(f.F, inner).Sorted()[0]
	if !a.Contents(outerObj).Has(innerObj) {
		t.Fatal("heap graph missing outer->inner edge")
	}
}

func TestTransitiveReachThroughTwoHops(t *testing.T) {
	// g -> a -> b; loading twice from g must yield b.
	b := ir.NewBuilder("m")
	b.Global("g", 1)
	f := b.Function("main", 0)
	gp := f.GlobalAddr("g")
	pa := f.MallocI(8)
	pb := f.MallocI(8)
	f.Store(gp, 0, pa)
	f.Store(pa, 0, pb)
	l1 := f.Load(gp, 0)
	l2 := f.Load(l1, 0)
	f.RetVoid()
	mustVerify(t, b)

	a := Analyze(b.M)
	bObj := a.PointsTo(f.F, pb).Sorted()[0]
	if !a.PointsTo(f.F, l2).Has(bObj) {
		t.Fatalf("two-hop load lost target: %v", a.PointsTo(f.F, l2).Sorted())
	}
}

func TestScalarsHaveEmptyPointsTo(t *testing.T) {
	b := ir.NewBuilder("m")
	f := b.Function("main", 0)
	x := f.C(5)
	y := f.AddI(x, 3)
	f.RetVoid()
	mustVerify(t, b)

	a := Analyze(b.M)
	if len(a.PointsTo(f.F, y)) != 0 {
		t.Fatal("scalar register has points-to targets")
	}
}

func TestAccessedObjects(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("g", 1)
	f := b.Function("main", 0)
	gp := f.GlobalAddr("g")
	v := f.C(1)
	f.Store(gp, 0, v)
	f.RetVoid()
	mustVerify(t, b)

	a := Analyze(b.M)
	var store *ir.Instr
	f.F.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpStore {
			store = in
		}
	})
	objs := a.AccessedObjects(f.F, store)
	gid, _ := a.ObjectForGlobal("g")
	if len(objs) != 1 || !objs.Has(gid) {
		t.Fatalf("AccessedObjects = %v", objs.Sorted())
	}
	if a.AccessedObjects(f.F, &ir.Instr{Op: ir.OpConst}) != nil {
		t.Fatal("non-mem instr should yield nil")
	}
}

func TestObjectLabels(t *testing.T) {
	b := ir.NewBuilder("m")
	b.Global("g", 1)
	f := b.Function("main", 0)
	f.Alloca(1)
	f.MallocI(8)
	f.RetVoid()
	mustVerify(t, b)
	a := Analyze(b.M)
	kinds := map[ObjKind]bool{}
	for _, o := range a.Objects() {
		if o.String() == "" {
			t.Error("empty object label")
		}
		kinds[o.Kind] = true
	}
	if !kinds[ObjGlobal] || !kinds[ObjAlloca] || !kinds[ObjMalloc] {
		t.Fatalf("missing object kinds: %v", kinds)
	}
}
