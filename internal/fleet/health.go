// Peer health tracking and circuit breaking: the resilience layer of the
// fleet's data paths.
//
// A dead or slow peer must cost a bounded, small amount of time — never
// `replicas × timeout` per miss. The Health tracker gives every peer a
// circuit breaker: consecutive call failures open it, an open breaker makes
// the peer invisible to the data paths (callers skip it instantly), and a
// seeded-jitter exponential-backoff probe schedule decides when the peer is
// asked again (/healthz). A successful probe closes the breaker; a failed
// one reopens it with doubled backoff.
//
// The tracker also keeps a window of recent successful peer-call latencies
// and derives from it the hedge delay: how long a fetch waits on the first
// owner before firing a speculative second fetch at the next one.
package fleet

import (
	"sort"
	"sync"
	"time"

	"hintm/internal/obs"
)

// BreakerState is one peer's circuit state.
type BreakerState int

const (
	// StateClosed: the peer is healthy; calls flow normally.
	StateClosed BreakerState = iota
	// StateOpen: the peer is considered down; calls skip it until the next
	// scheduled probe.
	StateOpen
	// StateHalfOpen: a probe is in flight; its outcome closes or reopens
	// the breaker. Regular calls still skip the peer.
	StateHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "closed"
}

// HealthConfig assembles a Health tracker. Zero fields take defaults.
type HealthConfig struct {
	// Threshold is how many consecutive failures open a peer's breaker
	// (default 3).
	Threshold int
	// Backoff is the first open→probe delay; each failed probe doubles it
	// (default 500ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 30s).
	MaxBackoff time.Duration
	// Seed drives the backoff jitter stream — same seed, same schedule.
	Seed uint64
	// Metrics receives breaker transition counters (nil = none).
	Metrics *obs.Metrics
	// Now is the clock (nil = time.Now); tests inject a fake.
	Now func() time.Time
}

// Health tracks per-peer circuit breakers and the shared peer-latency
// window. Safe for concurrent use.
type Health struct {
	cfg HealthConfig

	mu    sync.Mutex
	peers map[string]*breaker
	draws uint64 // jitter draw counter; (Seed, draws) → deterministic jitter

	lat  [128]time.Duration // ring buffer of successful call latencies
	latN int                // total recorded (index latN % len wraps)
}

type breaker struct {
	state   BreakerState
	fails   int           // consecutive failures
	backoff time.Duration // current open→probe delay
	next    time.Time     // when the next probe is due (Open only)
}

// NewHealth builds a tracker over cfg.
func NewHealth(cfg HealthConfig) *Health {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Health{cfg: cfg, peers: make(map[string]*breaker)}
}

func (h *Health) get(peer string) *breaker {
	b, ok := h.peers[peer]
	if !ok {
		b = &breaker{}
		h.peers[peer] = b
	}
	return b
}

// Allow reports whether a regular call may go to peer right now: true only
// for a closed breaker. Open and half-open peers are skipped instantly —
// that is the whole point — and come back via the probe path.
func (h *Health) Allow(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.get(peer).state == StateClosed
}

// Ready is Allow without registering unknown peers — the read-only form
// background sweeps use.
func (h *Health) Ready(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	b, ok := h.peers[peer]
	return !ok || b.state == StateClosed
}

// Due returns every open peer whose probe time has arrived, transitioning
// each to half-open. The caller owes each returned peer exactly one
// Report with the probe's outcome.
func (h *Health) Due(now time.Time) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var due []string
	for peer, b := range h.peers {
		if b.state == StateOpen && !now.Before(b.next) {
			b.state = StateHalfOpen
			h.cfg.Metrics.Counter(obs.MetricBreakerHalfOpen).Inc()
			due = append(due, peer)
		}
	}
	sort.Strings(due)
	return due
}

// Report records one call or probe outcome. Success closes the breaker and
// (when latency > 0) feeds the hedge-delay window; failure counts toward
// the threshold, and opening — or failing a half-open probe — schedules
// the next probe with seeded-jitter exponential backoff.
func (h *Health) Report(peer string, ok bool, latency time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.get(peer)
	if ok {
		if b.state != StateClosed {
			h.cfg.Metrics.Counter(obs.MetricBreakerClosed).Inc()
			h.cfg.Metrics.Counter(obs.MetricBreakerOpen).Add(-1)
		}
		b.state = StateClosed
		b.fails = 0
		b.backoff = 0
		if latency > 0 {
			h.lat[h.latN%len(h.lat)] = latency
			h.latN++
		}
		return
	}
	b.fails++
	switch b.state {
	case StateClosed:
		if b.fails < h.cfg.Threshold {
			return
		}
		h.cfg.Metrics.Counter(obs.MetricBreakerOpened).Inc()
		// The gauge counts not-closed breakers; a failed half-open probe
		// below reopens without moving it.
		h.cfg.Metrics.Counter(obs.MetricBreakerOpen).Add(1)
	case StateOpen:
		// A straggler call failed while the breaker was already open; the
		// probe schedule stands.
		return
	case StateHalfOpen:
		h.cfg.Metrics.Counter(obs.MetricBreakerOpened).Inc()
	}
	b.state = StateOpen
	if b.backoff == 0 {
		b.backoff = h.cfg.Backoff
	} else {
		b.backoff *= 2
		if b.backoff > h.cfg.MaxBackoff {
			b.backoff = h.cfg.MaxBackoff
		}
	}
	b.next = h.cfg.Now().Add(time.Duration(float64(b.backoff) * h.jitterLocked()))
}

// jitterLocked draws the next deterministic jitter factor in [0.75, 1.25).
// Seeded so a fleet's probe schedule replays exactly; spread so probes from
// breakers opened together do not land together. Callers hold h.mu.
func (h *Health) jitterLocked() float64 {
	h.draws++
	x := h.cfg.Seed + h.draws*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return 0.75 + float64(x>>11)/float64(1<<53)*0.5
}

// State reports peer's current breaker state.
func (h *Health) State(peer string) BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	b, ok := h.peers[peer]
	if !ok {
		return StateClosed
	}
	return b.state
}

// Snapshot returns every tracked peer's breaker state by name — the
// /healthz fleet view.
func (h *Health) Snapshot() map[string]string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]string, len(h.peers))
	for peer, b := range h.peers {
		out[peer] = b.state.String()
	}
	return out
}

// HedgeDelay derives how long a fetch should wait on its first peer before
// firing a speculative second fetch: the p99 of recent successful peer-call
// latencies, clamped to [1ms, budget/2]. With fewer than 8 samples it
// answers budget/8 — hedge early while the window warms up.
func (h *Health) HedgeDelay(budget time.Duration) time.Duration {
	h.mu.Lock()
	n := h.latN
	if n > len(h.lat) {
		n = len(h.lat)
	}
	window := make([]time.Duration, n)
	copy(window, h.lat[:n])
	h.mu.Unlock()

	d := budget / 8
	if n >= 8 {
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		d = window[(n*99+99)/100-1]
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if max := budget / 2; d > max {
		d = max
	}
	return d
}
