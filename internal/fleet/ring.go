// Package fleet is the placement layer of a multi-node hintm-served
// deployment: a consistent-hash ring mapping content-addressed store keys
// onto node base URLs.
//
// Results are location-independent by construction (the store key is the
// SHA-256 of the canonical request preimage, and object bytes carry no
// node-local state), so placement only has to answer one question: given a
// key, which nodes should hold — and be asked for — its result? The ring
// answers it deterministically on every node from nothing but the shared
// peer list, with no coordination, no membership protocol, and the usual
// consistent-hashing property that adding or removing one node remaps only
// ~1/N of the key space.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// vnodesPerNode is the number of virtual points each node contributes to
// the ring. 64 keeps the per-node share of the key space within a few
// percent of uniform for small fleets while the ring stays tiny.
const vnodesPerNode = 64

type vnode struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over node names (base URLs).
// Build once with New and share freely; all methods are read-only.
type Ring struct {
	nodes  []string
	vnodes []vnode // sorted by hash
}

// New builds a ring over the given nodes. Duplicates are collapsed; order
// does not matter — two nodes constructing rings from the same peer set
// (however spelled) agree on every placement.
func New(nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < vnodesPerNode; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Ties (vanishingly rare) break by name so every node agrees.
		return a.node < b.node
	})
	return r
}

// Nodes returns the distinct node names, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the number of distinct nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key — the first virtual point clockwise
// from the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns the first n distinct nodes clockwise from key's hash:
// the owner followed by its replicas. n is clamped to the node count.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(out) < n && i < len(r.vnodes); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.node] {
			seen[v.node] = true
			out = append(out, v.node)
		}
	}
	return out
}

// hash64 is FNV-1a with a splitmix64 finalizer. FNV is deterministic
// across processes, architectures, and Go versions — placement must agree
// fleet-wide, so a seeded or randomized hash is exactly wrong here — but
// its raw output clusters for similar inputs (node URLs differ in one
// digit), which skews arc lengths badly; the finalizer's avalanche fixes
// the spread without giving up determinism.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
