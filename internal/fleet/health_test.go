package fleet

import (
	"testing"
	"time"

	"hintm/internal/obs"
)

// fakeClock is a settable clock for deterministic breaker schedules.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) health(m *obs.Metrics) *Health {
	return NewHealth(HealthConfig{Threshold: 3, Backoff: 100 * time.Millisecond,
		MaxBackoff: time.Second, Seed: 1, Metrics: m, Now: c.now})
}

// TestBreakerOpensAtThreshold: failures below the threshold keep the peer
// allowed; the threshold-th consecutive failure opens the breaker, and one
// success anywhere resets the count.
func TestBreakerOpensAtThreshold(t *testing.T) {
	clock := newClock()
	m := obs.NewMetrics()
	h := clock.health(m)
	const peer = "http://a"

	h.Report(peer, false, 0)
	h.Report(peer, false, 0)
	if !h.Allow(peer) {
		t.Fatal("breaker opened below threshold")
	}
	h.Report(peer, true, time.Millisecond) // success resets the streak
	h.Report(peer, false, 0)
	h.Report(peer, false, 0)
	if !h.Allow(peer) {
		t.Fatal("breaker opened despite the reset")
	}
	h.Report(peer, false, 0)
	if h.Allow(peer) {
		t.Fatal("breaker still closed after threshold consecutive failures")
	}
	if got := h.State(peer); got != StateOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if m.Value("fleet_breaker_opened_total") != 1 || m.Value("fleet_breaker_open") != 1 {
		t.Fatalf("transition metrics: %+v", m.Snapshot())
	}
}

// TestBreakerProbeLifecycle walks open → half-open (probe due) → closed on
// a successful probe, and open again with doubled backoff on a failed one.
func TestBreakerProbeLifecycle(t *testing.T) {
	clock := newClock()
	m := obs.NewMetrics()
	h := clock.health(m)
	const peer = "http://a"
	for i := 0; i < 3; i++ {
		h.Report(peer, false, 0)
	}

	// Not due yet: backoff is 100ms × jitter ≥ 75ms.
	if due := h.Due(clock.now().Add(50 * time.Millisecond)); len(due) != 0 {
		t.Fatalf("probe due too early: %v", due)
	}
	// Due within 100ms × 1.25 jitter cap.
	clock.advance(125 * time.Millisecond)
	due := h.Due(clock.now())
	if len(due) != 1 || due[0] != peer {
		t.Fatalf("due = %v, want [%s]", due, peer)
	}
	if got := h.State(peer); got != StateHalfOpen {
		t.Fatalf("state after Due = %v, want half-open", got)
	}
	if h.Allow(peer) {
		t.Fatal("half-open breaker allowed a regular call")
	}

	// Failed probe: reopens with doubled backoff — not due again for 150ms
	// (200ms × 0.75 jitter floor).
	h.Report(peer, false, 0)
	if due := h.Due(clock.now().Add(149 * time.Millisecond)); len(due) != 0 {
		t.Fatalf("reopened breaker due before doubled backoff: %v", due)
	}
	clock.advance(251 * time.Millisecond)
	if due := h.Due(clock.now()); len(due) != 1 {
		t.Fatalf("reopened breaker never came due: %v", due)
	}

	// Successful probe closes it.
	h.Report(peer, true, time.Millisecond)
	if !h.Allow(peer) || h.State(peer) != StateClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if m.Value("fleet_breaker_closed_total") != 1 || m.Value("fleet_breaker_open") != 0 {
		t.Fatalf("close metrics: %+v", m.Snapshot())
	}
	if m.Value("fleet_breaker_halfopen_total") != 2 {
		t.Fatalf("halfopen_total = %d, want 2", m.Value("fleet_breaker_halfopen_total"))
	}
}

// TestBreakerBackoffDeterministic: two trackers with the same seed produce
// identical probe schedules; a different seed produces a different one.
func TestBreakerBackoffDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		clock := newClock()
		h := NewHealth(HealthConfig{Threshold: 1, Backoff: 100 * time.Millisecond,
			MaxBackoff: 10 * time.Second, Seed: seed, Now: clock.now})
		var out []time.Duration
		for i := 0; i < 6; i++ {
			h.Report("p", false, 0)
			// Scan forward in 1ms steps until the probe comes due.
			var waited time.Duration
			for len(h.Due(clock.now())) == 0 {
				clock.advance(time.Millisecond)
				waited += time.Millisecond
			}
			out = append(out, waited)
		}
		return out
	}
	a, b, c := schedule(7), schedule(7), schedule(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at probe %d: %v vs %v", i, a, b)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	// Exponential shape: each wait is roughly double the previous (jitter
	// keeps the ratio within [1.2, 3.4] until the cap).
	for i := 1; i < 4; i++ {
		ratio := float64(a[i]) / float64(a[i-1])
		if ratio < 1.2 || ratio > 3.4 {
			t.Fatalf("backoff not exponential: waits %v", a)
		}
	}
}

// TestHedgeDelay: defaults to budget/8 while cold, tracks the p99 of the
// recorded latency window once warm, and clamps to [1ms, budget/2].
func TestHedgeDelay(t *testing.T) {
	h := NewHealth(HealthConfig{Now: newClock().now})
	budget := 2 * time.Second
	if got := h.HedgeDelay(budget); got != budget/8 {
		t.Fatalf("cold hedge delay = %v, want %v", got, budget/8)
	}
	for i := 0; i < 90; i++ {
		h.Report("p", true, 10*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Report("p", true, 400*time.Millisecond) // the tail
	}
	if got := h.HedgeDelay(budget); got != 400*time.Millisecond {
		t.Fatalf("warm hedge delay = %v, want the 400ms p99", got)
	}
	// The p99 exceeds budget/2 → clamp.
	if got := h.HedgeDelay(100 * time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("clamped hedge delay = %v, want 50ms", got)
	}
}

// TestSnapshotAndReady pins the healthz view and the sweep-side check.
func TestSnapshotAndReady(t *testing.T) {
	clock := newClock()
	h := clock.health(nil)
	h.Report("http://a", true, time.Millisecond)
	for i := 0; i < 3; i++ {
		h.Report("http://b", false, 0)
	}
	snap := h.Snapshot()
	if snap["http://a"] != "closed" || snap["http://b"] != "open" {
		t.Fatalf("snapshot = %v", snap)
	}
	if !h.Ready("http://a") || h.Ready("http://b") {
		t.Fatal("Ready disagrees with breaker states")
	}
	if !h.Ready("http://never-seen") {
		t.Fatal("unknown peer must be ready")
	}
	if _, tracked := h.Snapshot()["http://never-seen"]; tracked {
		t.Fatal("Ready registered the unknown peer")
	}
}
