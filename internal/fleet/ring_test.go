package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
	}
	return nodes
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

// TestRingAgreement is the property the fleet depends on: every node,
// building the ring from the same peer set in any order, maps every key
// to the same owners.
func TestRingAgreement(t *testing.T) {
	nodes := testNodes(3)
	a := New(nodes)
	b := New([]string{nodes[2], nodes[0], nodes[1], nodes[0]}) // shuffled + dup
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatalf("node sets differ: %v vs %v", a.Nodes(), b.Nodes())
	}
	for _, key := range testKeys(200) {
		oa, ob := a.Owners(key, 2), b.Owners(key, 2)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("owners disagree for %s: %v vs %v", key, oa, ob)
		}
		if len(oa) != 2 || oa[0] == oa[1] {
			t.Fatalf("owners not distinct for %s: %v", key, oa)
		}
		if a.Owner(key) != oa[0] {
			t.Fatalf("Owner != Owners[0] for %s", key)
		}
	}
}

// TestRingSpread checks the 64-vnode ring shares keys roughly uniformly.
func TestRingSpread(t *testing.T) {
	r := New(testNodes(3))
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	for node, n := range counts {
		frac := float64(n) / float64(len(keys))
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("node %s owns %.1f%% of keys, far from 33%%", node, frac*100)
		}
	}
}

// TestRingStability checks consistent hashing's point: removing one node
// moves only that node's keys — every key it did not own keeps its owner.
func TestRingStability(t *testing.T) {
	nodes := testNodes(3)
	full := New(nodes)
	reduced := New(nodes[:2])
	moved := 0
	keys := testKeys(1000)
	for _, key := range keys {
		was := full.Owner(key)
		now := reduced.Owner(key)
		if was != nodes[2] && now != was {
			t.Fatalf("key %s moved from surviving node %s to %s", key, was, now)
		}
		if was == nodes[2] {
			moved++
		}
	}
	if moved == 0 || moved == len(keys) {
		t.Fatalf("removed node owned %d/%d keys; spread is broken", moved, len(keys))
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := New(nil)
	if empty.Owner("k") != "" || empty.Owners("k", 3) != nil || empty.Len() != 0 {
		t.Error("empty ring should own nothing")
	}
	one := New([]string{"http://a", "", "http://a"})
	if one.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (dups and blanks collapsed)", one.Len())
	}
	if got := one.Owners("k", 5); len(got) != 1 || got[0] != "http://a" {
		t.Errorf("Owners over-clamped: %v", got)
	}
	if got := one.Owners("k", 0); got != nil {
		t.Errorf("Owners(k, 0) = %v, want nil", got)
	}
}
