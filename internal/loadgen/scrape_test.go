package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hintm/internal/obs"
)

// metricsServer serves m as /metrics, exactly like hintm-served does.
func metricsServer(t *testing.T, m *obs.Metrics) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		if err := m.Render(w); err != nil {
			t.Errorf("Render: %v", err)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func observe(m *obs.Metrics, node, outcome string, v float64, n int) {
	h := m.Histogram(obs.MetricServeRequestSec, obs.L("node", node), obs.L("outcome", outcome))
	for i := 0; i < n; i++ {
		h.Observe(v)
	}
}

func TestScrapeDeltaAcrossFleet(t *testing.T) {
	m1, m2 := obs.NewMetrics(), obs.NewMetrics()
	ts1, ts2 := metricsServer(t, m1), metricsServer(t, m2)
	targets := []string{ts1.URL, ts2.URL}
	ctx := context.Background()

	// Pre-run traffic that the delta must exclude.
	observe(m1, "node1", "hit-store", 0.0005, 10)
	before, err := ScrapeServers(ctx, nil, targets)
	if err != nil {
		t.Fatalf("before scrape: %v", err)
	}
	if before[ts1.URL].Count != 10 || before[ts2.URL].Count != 0 {
		t.Fatalf("before counts: %d, %d", before[ts1.URL].Count, before[ts2.URL].Count)
	}

	// The run: fast hits on node1, two slow simulations on node2.
	observe(m1, "node1", "hit-store", 0.001, 5)
	observe(m2, "node2", "sim", 2.0, 2)
	after, err := ScrapeServers(ctx, nil, targets)
	if err != nil {
		t.Fatalf("after scrape: %v", err)
	}

	delta := after.Delta(before)
	if delta.Count != 7 {
		t.Fatalf("delta count = %d, want 7 (pre-run traffic must not leak in)", delta.Count)
	}
	rep := &Report{Server: delta}
	// p50 is a fast hit, p99 falls in the bucket holding the 2s simulations.
	if p50 := rep.ServerPercentile(0.50); p50 > 100*time.Millisecond {
		t.Errorf("server p50 = %v, want fast-hit territory", p50)
	}
	if p99 := rep.ServerPercentile(0.99); p99 < time.Second || p99 > 10*time.Second {
		t.Errorf("server p99 = %v, want within the 2s observation's bucket", p99)
	}

	// The gate: a bound below the simulations fails, a bound above passes.
	if err := rep.Check(SLO{ServerP99: 500 * time.Millisecond}); err == nil {
		t.Error("ServerP99 500ms should be violated by 2s simulations")
	} else if !strings.Contains(err.Error(), "server-side p99") {
		t.Errorf("violation message: %v", err)
	}
	if err := rep.Check(SLO{ServerP99: 10 * time.Second}); err != nil {
		t.Errorf("ServerP99 10s should pass: %v", err)
	}
}

func TestServerSLOWithoutSamplesIsViolation(t *testing.T) {
	rep := &Report{}
	if err := rep.Check(SLO{ServerP99: time.Second}); err == nil {
		t.Error("a server-side SLO with nothing scraped must not pass")
	}
}

func TestScrapeNoHistogramIsZero(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter(obs.MetricServeRequests).Inc() // counters only, no histogram yet
	ts := metricsServer(t, m)
	got, err := ScrapeServers(context.Background(), nil, []string{ts.URL})
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if got[ts.URL].Count != 0 {
		t.Errorf("fresh server snapshot count = %d, want 0", got[ts.URL].Count)
	}
}

func TestScrapeFailuresAreErrors(t *testing.T) {
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close()
	if _, err := ScrapeServers(context.Background(), nil, []string{down.URL}); err == nil {
		t.Error("unreachable target must be a scrape error")
	}

	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{not exposition"))
	}))
	defer garbage.Close()
	if _, err := ScrapeServers(context.Background(), nil, []string{garbage.URL}); err == nil {
		t.Error("invalid exposition must be a scrape error")
	}
}
