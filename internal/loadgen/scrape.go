// scrape.go reads a fleet's server-side latency histograms off /metrics.
//
// The client-side latencies in a Report measure everything between the
// generator and the answer — goroutine wakeup jitter, the client HTTP
// stack, the network — while serve_request_seconds is observed inside
// the server around the resolve path alone. Scraping each target before
// and after the run and gating on the delta therefore checks what the
// servers actually did during this run: immune to client-side noise,
// and immune to whatever traffic hit the fleet before the run started.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"hintm/internal/obs"
)

// ServerScrape is one scrape of a fleet: each target's aggregated
// serve_request_seconds histogram (summed across its node/outcome label
// sets), keyed by target base URL. A target that has never served a
// request contributes a zero snapshot — normal for the before-scrape of
// a fresh fleet.
type ServerScrape map[string]obs.HistSnapshot

// ScrapeServers fetches and parses every target's /metrics. Any
// unreachable target or invalid exposition is an error: a scrape that
// silently dropped a node would understate fleet latency, which is the
// wrong failure mode for an SLO gate.
func ScrapeServers(ctx context.Context, client *http.Client, targets []string) (ServerScrape, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	out := make(ServerScrape, len(targets))
	for _, target := range targets {
		snap, err := scrapeOne(ctx, client, target)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", target, err)
		}
		out[target] = snap
	}
	return out, nil
}

func scrapeOne(ctx context.Context, client *http.Client, target string) (obs.HistSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics", nil)
	if err != nil {
		return obs.HistSnapshot{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return obs.HistSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.HistSnapshot{}, fmt.Errorf("HTTP %d from /metrics", resp.StatusCode)
	}
	fams, err := obs.ParseText(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return obs.HistSnapshot{}, err
	}
	f, ok := fams[obs.MetricServeRequestSec]
	if !ok {
		return obs.HistSnapshot{}, nil // nothing served yet: zero, not an error
	}
	return f.Histogram()
}

// Delta returns the fleet-wide serve_request_seconds window between two
// scrapes of the same targets: per-target after-minus-before, summed
// across targets into one histogram. A target present only in the after
// scrape (restarted mid-run, say) contributes its full after state.
func (after ServerScrape) Delta(before ServerScrape) obs.HistSnapshot {
	var total obs.HistSnapshot
	for target, a := range after {
		b := before[target]
		if len(b.Buckets) == len(a.Buckets) {
			a = a.Sub(b)
		}
		total = addHist(total, a)
	}
	return total
}

// addHist sums two snapshots bucket-wise. Snapshots with foreign bucket
// layouts cannot be combined meaningfully and are skipped — every node
// in a fleet uses obs.DefLatencyBounds, so this only guards against a
// mixed-version fleet.
func addHist(acc, s obs.HistSnapshot) obs.HistSnapshot {
	if len(s.Buckets) == 0 {
		return acc
	}
	if len(acc.Buckets) == 0 {
		out := obs.HistSnapshot{
			Bounds:  append([]float64(nil), s.Bounds...),
			Buckets: append([]uint64(nil), s.Buckets...),
			Count:   s.Count,
			Sum:     s.Sum,
		}
		return out
	}
	if len(acc.Buckets) != len(s.Buckets) {
		return acc
	}
	for i, c := range s.Buckets {
		acc.Buckets[i] += c
	}
	acc.Count += s.Count
	acc.Sum += s.Sum
	return acc
}
