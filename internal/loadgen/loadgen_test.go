package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"hintm/internal/api"
)

// TestScheduleDeterministic: same config, same schedule; different seed,
// different schedule.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{N: 50, Rate: 100, Seed: 7, Process: Poisson}
	a, b := Schedule(cfg), Schedule(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	cfg.Seed = 8
	if reflect.DeepEqual(a, Schedule(cfg)) {
		t.Fatal("different seed produced the same schedule")
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("offsets not monotonic at %d: %v < %v", i, a[i], a[i-1])
		}
	}
}

// TestScheduleRate checks the mean inter-arrival matches 1/Rate for both
// processes (law of large numbers; generous tolerance).
func TestScheduleRate(t *testing.T) {
	for _, p := range []Process{Poisson, Bursty} {
		cfg := Config{N: 5000, Rate: 1000, Seed: 42, Process: p, CV: 3}
		offs := Schedule(cfg)
		mean := offs[len(offs)-1].Seconds() / float64(len(offs))
		want := 1 / cfg.Rate
		if mean < want/2 || mean > want*2 {
			t.Errorf("%v: mean inter-arrival %.6fs, want ~%.6fs", p, mean, want)
		}
	}
}

// TestBurstyIsBurstier: the Gamma process at CV=4 must show a larger
// inter-arrival variance than Poisson at the same mean rate.
func TestBurstyIsBurstier(t *testing.T) {
	variance := func(p Process) float64 {
		offs := Schedule(Config{N: 5000, Rate: 1000, Seed: 11, Process: p, CV: 4})
		var gaps []float64
		prev := time.Duration(0)
		for _, o := range offs {
			gaps = append(gaps, (o - prev).Seconds())
			prev = o
		}
		var mean, v float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			v += (g - mean) * (g - mean)
		}
		return v / float64(len(gaps))
	}
	vp, vb := variance(Poisson), variance(Bursty)
	if vb < 4*vp {
		t.Errorf("bursty variance %.3g not clearly above poisson %.3g", vb, vp)
	}
}

func TestParseProcess(t *testing.T) {
	for in, want := range map[string]Process{"poisson": Poisson, "Bursty": Bursty} {
		got, err := ParseProcess(in)
		if err != nil || got != want {
			t.Errorf("ParseProcess(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseProcess("uniform"); err == nil {
		t.Error("ParseProcess accepted an unknown process")
	}
}

func TestReportCheck(t *testing.T) {
	rep := &Report{
		Sent: 10, Hits: 6, Simulated: 3, Failed: 1,
		latencies: []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 100 * time.Millisecond},
	}
	if got := rep.Percentile(0.99); got != 100*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := rep.Percentile(0.50); got != 2*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if math.Abs(rep.HitRate()-0.6) > 1e-9 {
		t.Errorf("hit rate = %v", rep.HitRate())
	}
	if err := rep.Check(SLO{P99: time.Second, MinHitRate: 0.5, MaxFailed: 1}); err != nil {
		t.Errorf("met SLO reported violated: %v", err)
	}
	err := rep.Check(SLO{P99: time.Millisecond, MinHitRate: 0.9, MaxFailed: 0})
	if err == nil {
		t.Fatal("violated SLO reported met")
	}
}

// TestRunAgainstStub drives the full open-loop path against a stub server
// and checks classification of hits, simulations, and 429s.
func TestRunAgainstStub(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		switch {
		case n%5 == 0: // every 5th request is shed
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{Schema: api.Schema,
				Error: api.Errorf(api.CodeOverloaded, "work queue full")})
		case n%2 == 0:
			json.NewEncoder(w).Encode(api.RunsResponse{Schema: api.Schema,
				Runs: []api.RunStatus{{Key: "k", Status: "hit", Source: "store"}}})
		default:
			json.NewEncoder(w).Encode(api.RunsResponse{Schema: api.Schema,
				Runs: []api.RunStatus{{Key: "k", Status: "done", Source: "sim"}}})
		}
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Targets: []string{ts.URL},
		Specs:   []api.RunSpec{{Workload: "labyrinth", Scale: "small"}},
		N:       20, Rate: 2000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 20 {
		t.Fatalf("sent %d, want 20", rep.Sent)
	}
	if rep.Throttled != 4 || rep.Hits+rep.Simulated != 16 || rep.Failed != 0 {
		t.Errorf("classification off: %+v", rep)
	}
	if rep.Percentile(0.99) <= 0 {
		t.Error("no latency recorded")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

// TestTimeoutsAreDistinct: requests killed by the per-request deadline land
// in TimedOut, not Failed, and Check counts both against MaxFailed.
func TestTimeoutsAreDistinct(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1)%2 == 0 { // every other request hangs past the deadline
			select {
			case <-time.After(5 * time.Second):
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.RunsResponse{Schema: api.Schema,
			Runs: []api.RunStatus{{Key: "k", Status: "hit", Source: "store"}}})
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), Config{
		Targets: []string{ts.URL},
		Specs:   []api.RunSpec{{Workload: "labyrinth", Scale: "small"}},
		N:       8, Rate: 2000, Seed: 3,
		Timeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TimedOut != 4 || rep.Failed != 0 || rep.Hits != 4 {
		t.Fatalf("classification: %+v", rep)
	}
	if err := rep.Check(SLO{MaxFailed: 3}); err == nil {
		t.Error("timeouts did not count against MaxFailed")
	}
	if err := rep.Check(SLO{MaxFailed: 4}); err != nil {
		t.Errorf("SLO with room for the timeouts still failed: %v", err)
	}
}

func TestIsTimeout(t *testing.T) {
	if isTimeout(nil) || isTimeout(context.Canceled) {
		t.Error("non-timeout classified as timeout")
	}
	if !isTimeout(context.DeadlineExceeded) {
		t.Error("context deadline not classified as timeout")
	}
}
