// Package loadgen is a seeded open-loop synthetic load generator for the
// hintm-served fleet.
//
// Open-loop means arrivals are decided by a clock, not by completions: the
// generator computes the entire arrival schedule up front from a seeded
// RNG and fires request i at its offset whether or not request i-1 has
// answered. That is the property that makes a load test honest about
// queueing — a closed-loop client slows down exactly when the server
// struggles, hiding the latency it should be measuring (the classic
// coordinated-omission trap).
//
// Two arrival processes are provided: Poisson (exponential inter-arrivals,
// the memoryless baseline) and Bursty (Gamma inter-arrivals with a
// configurable coefficient of variation > 1, so requests clump into
// bursts separated by lulls at the same mean rate). Both are driven by
// math/rand with an explicit seed: the same (seed, n, rate, process)
// always produces the same schedule and the same request sequence, so a
// load run is reproducible end to end — only the measured latencies vary.
//
// The generator speaks hintm-api/v2 (POST /v1/runs?wait=1, one spec per
// request, round-robin across targets) and folds the outcomes into a
// Report: latency quantiles, hit/simulated/throttled counts, and the warm
// hit rate, with SLO thresholds checked by Report.Check.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"hintm/internal/api"
	"hintm/internal/obs"
)

// Process selects the arrival process.
type Process int

const (
	// Poisson arrivals: exponential inter-arrival times.
	Poisson Process = iota
	// Bursty arrivals: Gamma inter-arrival times with CV > 1 — same mean
	// rate as Poisson, but clumped.
	Bursty
)

func (p Process) String() string {
	if p == Bursty {
		return "bursty"
	}
	return "poisson"
}

// ParseProcess parses "poisson" or "bursty".
func ParseProcess(s string) (Process, error) {
	switch strings.ToLower(s) {
	case "poisson":
		return Poisson, nil
	case "bursty":
		return Bursty, nil
	}
	return 0, fmt.Errorf("unknown arrival process %q (want poisson|bursty)", s)
}

// Config describes one load run.
type Config struct {
	// Targets are the node base URLs; request i goes to Targets[i % len].
	Targets []string
	// Specs is the request pool; request i submits Specs[i % len], so a
	// pass longer than the pool revisits every spec (the warm phase).
	Specs []api.RunSpec
	// N is the total number of requests.
	N int
	// Rate is the mean arrival rate in requests/second.
	Rate float64
	// Process selects Poisson or Bursty arrivals.
	Process Process
	// CV is the inter-arrival coefficient of variation for Bursty
	// (ignored for Poisson; default 3).
	CV float64
	// Seed drives the schedule; same seed, same schedule.
	Seed uint64
	// Timeout bounds each request when Client is nil (0 = 5 minutes — a
	// load test must observe slow requests by default, not abort them).
	// Requests that hit it are reported as TimedOut, a distinct category
	// from other failures: against a degraded fleet, "slow" and "broken"
	// are different diagnoses.
	Timeout time.Duration
	// Client performs the HTTP calls (nil = a client with Timeout).
	Client *http.Client
}

// Schedule returns the deterministic arrival offsets (from test start) for
// cfg: N offsets, non-decreasing, mean spacing 1/Rate.
func Schedule(cfg Config) []time.Duration {
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	cv := cfg.CV
	if cv <= 0 {
		cv = 3
	}
	// Gamma with shape k has CV = 1/sqrt(k); scale holds the mean at
	// 1/Rate. k=1 degenerates to the exponential, i.e. Poisson arrivals.
	shape := 1.0
	if cfg.Process == Bursty {
		shape = 1 / (cv * cv)
	}
	scale := 1 / (cfg.Rate * shape)
	offsets := make([]time.Duration, cfg.N)
	var t float64 // seconds
	for i := range offsets {
		t += gamma(rng, shape, scale)
		offsets[i] = time.Duration(t * float64(time.Second))
	}
	return offsets
}

// gamma samples Gamma(shape, scale) via Marsaglia–Tsang, with the usual
// boost for shape < 1. Deterministic given the rng state.
func gamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape < 1 {
		// Gamma(k) = Gamma(k+1) · U^(1/k)
		return gamma(rng, shape+1, scale) * math.Pow(rng.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Result is one request's outcome.
type Result struct {
	Index   int
	Target  string
	HTTP    int           // HTTP status code (0 on transport error)
	Status  string        // RunStatus.Status: hit|done|failed ("" on error)
	Source  string        // RunStatus.Source: store|peer|sim
	Latency time.Duration // request round trip
	Err     error
}

// Report aggregates a load run.
type Report struct {
	Sent      int
	Hits      int // answered from a store (local or peer) without simulating
	PeerHits  int // subset of Hits that crossed the fleet
	Simulated int
	Throttled int // 429s — admission control shed the request
	TimedOut  int // client-side deadline expired before an answer
	Failed    int // run failures and transport/HTTP errors (excl. timeouts)
	Results   []Result

	// Server is the fleet-wide serve_request_seconds delta scraped around
	// the run — what the servers measured, as opposed to the client-side
	// latencies above. Zero unless the caller scraped; see ScrapeServers.
	Server obs.HistSnapshot

	latencies []time.Duration // sorted, successful requests only
}

// HitRate is the fraction of non-throttled requests answered warm.
func (r *Report) HitRate() float64 {
	den := r.Sent - r.Throttled
	if den == 0 {
		return 0
	}
	return float64(r.Hits) / float64(den)
}

// Percentile returns the q-quantile (0 < q <= 1) of successful-request
// latency, 0 if none.
func (r *Report) Percentile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(r.latencies)))) - 1
	if i < 0 {
		i = 0
	}
	return r.latencies[i]
}

// ServerPercentile returns the q-quantile of the scraped server-side
// request-latency delta (Report.Server), 0 if nothing was scraped.
func (r *Report) ServerPercentile(q float64) time.Duration {
	return time.Duration(r.Server.Quantile(q) * float64(time.Second))
}

// SLO is the service-level objective a load run is gated on. Zero fields
// are not checked.
type SLO struct {
	// P99 bounds the 99th-percentile latency of successful requests.
	P99 time.Duration
	// ServerP99 bounds the server-side 99th-percentile request latency,
	// estimated from the scraped serve_request_seconds delta
	// (Report.Server). Gating with no scraped samples is a violation, not
	// a pass — an SLO that silently stops measuring is no SLO.
	ServerP99 time.Duration
	// MinHitRate is the minimum warm hit rate (0..1).
	MinHitRate float64
	// MaxFailed bounds hard failures plus timeouts (throttled requests are
	// shed load, not failures — they are reported but never counted here).
	MaxFailed int
}

// Check returns an error describing every violated objective, nil if the
// run met them all.
func (r *Report) Check(slo SLO) error {
	var errs []error
	if slo.P99 > 0 {
		if got := r.Percentile(0.99); got > slo.P99 {
			errs = append(errs, fmt.Errorf("p99 latency %v exceeds SLO %v", got, slo.P99))
		}
	}
	if slo.ServerP99 > 0 {
		if r.Server.Count == 0 {
			errs = append(errs, errors.New("server-side p99 SLO set but no serve_request_seconds samples were scraped"))
		} else if got := r.ServerPercentile(0.99); got > slo.ServerP99 {
			errs = append(errs, fmt.Errorf("server-side p99 latency %v exceeds SLO %v", got, slo.ServerP99))
		}
	}
	if slo.MinHitRate > 0 {
		if got := r.HitRate(); got < slo.MinHitRate {
			errs = append(errs, fmt.Errorf("warm hit rate %.1f%% below SLO %.1f%%",
				got*100, slo.MinHitRate*100))
		}
	}
	if r.Failed+r.TimedOut > slo.MaxFailed {
		errs = append(errs, fmt.Errorf("%d requests failed + %d timed out (max %d)",
			r.Failed, r.TimedOut, slo.MaxFailed))
	}
	return errors.Join(errs...)
}

// Run executes the load run: every request fires at its scheduled offset
// (open loop — no waiting for earlier responses), round-robin across
// targets, and the outcomes fold into a Report. ctx cancellation stops
// launching new requests; in-flight ones finish.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Targets) == 0 || len(cfg.Specs) == 0 || cfg.N <= 0 || cfg.Rate <= 0 {
		return nil, errors.New("loadgen: need targets, specs, n > 0, rate > 0")
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 5 * time.Minute
		}
		client = &http.Client{Timeout: timeout}
	}
	offsets := Schedule(cfg)
	results := make([]Result, cfg.N)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.N; i++ {
		if d := time.Until(start.Add(offsets[i])); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			results = results[:i]
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = oneRequest(ctx, client, cfg.Targets[i%len(cfg.Targets)], cfg.Specs[i%len(cfg.Specs)], i)
		}(i)
	}
	wg.Wait()

	rep := &Report{Sent: len(results), Results: results}
	for _, res := range results {
		switch {
		case res.HTTP == http.StatusTooManyRequests:
			rep.Throttled++
		case isTimeout(res.Err):
			rep.TimedOut++
		case res.Err != nil || res.Status == "failed":
			rep.Failed++
		case res.Status == "hit":
			rep.Hits++
			if res.Source == "peer" {
				rep.PeerHits++
			}
			rep.latencies = append(rep.latencies, res.Latency)
		case res.Status == "done":
			rep.Simulated++
			rep.latencies = append(rep.latencies, res.Latency)
		default:
			rep.Failed++
		}
	}
	sort.Slice(rep.latencies, func(a, b int) bool { return rep.latencies[a] < rep.latencies[b] })
	return rep, nil
}

// isTimeout reports whether err is a client-side deadline expiry — the
// http.Client timeout (a net.Error with Timeout true) or a context
// deadline that propagated into the transport.
func isTimeout(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// oneRequest submits one spec with ?wait=1 and classifies the outcome.
func oneRequest(ctx context.Context, client *http.Client, target string, spec api.RunSpec, index int) Result {
	res := Result{Index: index, Target: target}
	body, _ := json.Marshal(api.RunsRequest{Schema: api.Schema, Requests: []api.RunSpec{spec}})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/runs?wait=1", bytes.NewReader(body))
	if err != nil {
		res.Err = err
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	begin := time.Now()
	resp, err := client.Do(req)
	res.Latency = time.Since(begin)
	if err != nil {
		res.Err = err
		return res
	}
	defer resp.Body.Close()
	res.HTTP = resp.StatusCode
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		res.Err = err
		return res
	}
	if resp.StatusCode != http.StatusOK {
		var env api.ErrorEnvelope
		if json.Unmarshal(raw, &env) == nil && env.Error != nil {
			res.Err = env.Error
		} else {
			res.Err = fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		return res
	}
	var out api.RunsResponse
	if err := json.Unmarshal(raw, &out); err != nil || len(out.Runs) != 1 {
		res.Err = fmt.Errorf("malformed response: %v", err)
		return res
	}
	res.Status = out.Runs[0].Status
	res.Source = out.Runs[0].Source
	if out.Runs[0].Error != nil {
		res.Err = out.Runs[0].Error
	}
	return res
}
