package htm

import "hintm/internal/flat"

// rwBits records read/write membership for a tracked block.
type rwBits uint8

const (
	bitRead rwBits = 1 << iota
	bitWrite
)

// countBits tallies live entries carrying bit — the exact set-size
// statistic every tracker reports. It scans the table's slots; the scan is
// off the per-access hot path (sizes are read at commit/abort only).
func countBits(tab *flat.Tab[rwBits], bit rwBits) int {
	n := 0
	for i, g := range tab.Gens {
		if g == tab.Gen && tab.Vals[i]&bit != 0 {
			n++
		}
	}
	return n
}

// P8Tracker models IBM POWER8's dedicated 64-entry fully-associative
// transactional buffer: readset and writeset share the same structure, one
// entry per cache block. Entries live in a fixed open-addressed table sized
// at twice the buffer capacity, reset by generation stamp between
// transactions, so steady-state tracking allocates nothing.
type P8Tracker struct {
	tab      flat.Tab[rwBits]
	capacity int
}

// NewP8Tracker returns a buffer of the given entry count (the paper uses 64).
func NewP8Tracker(capacity int) *P8Tracker {
	t := &P8Tracker{capacity: capacity}
	t.tab.Init(2*capacity, true)
	return t
}

func (t *P8Tracker) track(block uint64, bit rwBits) bool {
	if i, ok := t.tab.Find(block); ok {
		t.tab.Vals[i] |= bit
		return true
	}
	if t.tab.N >= t.capacity {
		return false
	}
	t.tab.Add(block, bit)
	return true
}

// TrackRead implements Tracker.
func (t *P8Tracker) TrackRead(block uint64) bool { return t.track(block, bitRead) }

// TrackWrite implements Tracker.
func (t *P8Tracker) TrackWrite(block uint64) bool { return t.track(block, bitWrite) }

// CheckRemote implements Tracker: a remote write conflicts with any tracked
// block; a remote read conflicts with a tracked write.
func (t *P8Tracker) CheckRemote(block uint64, remoteWrite bool) (bool, bool) {
	i, ok := t.tab.Find(block)
	if !ok {
		return false, false
	}
	if remoteWrite {
		return true, false
	}
	return t.tab.Vals[i]&bitWrite != 0, false
}

// NotifyEviction implements Tracker: the dedicated buffer is decoupled from
// the L1, so evictions are harmless.
func (t *P8Tracker) NotifyEviction(uint64) bool { return true }

// ReadSetSize implements Tracker.
func (t *P8Tracker) ReadSetSize() int { return countBits(&t.tab, bitRead) }

// WriteSetSize implements Tracker.
func (t *P8Tracker) WriteSetSize() int { return countBits(&t.tab, bitWrite) }

// DistinctBlocks implements Tracker.
func (t *P8Tracker) DistinctBlocks() int { return t.tab.N }

// Reset implements Tracker.
func (t *P8Tracker) Reset() { t.tab.Reset() }

// Signature is a PBX-style hardware signature: a Bloom-like bitvector that
// summarizes overflowed readset addresses. Membership tests can alias,
// producing false conflicts (paper §II-A).
type Signature struct {
	bits   []uint64
	nbits  uint64
	hashes int
	// exact is simulation-only bookkeeping used to label a signature hit
	// as a true conflict or a false positive; real hardware cannot tell.
	exact flat.Tab[struct{}]
}

// NewSignature builds a signature of nbits (the paper's P8S uses 1024) with
// the given number of hash functions.
func NewSignature(nbits uint64, hashes int) *Signature {
	s := &Signature{
		bits:   make([]uint64, (nbits+63)/64),
		nbits:  nbits,
		hashes: hashes,
	}
	s.exact.Init(256, false)
	return s
}

// pbxHash implements the page-block-XOR family: the block address's upper
// (page) bits are XOR-folded onto the lower (block-in-page) bits, giving
// cheap, well-distributed indices.
func (s *Signature) pbxHash(block uint64, i int) uint64 {
	x := block
	x ^= x >> 6
	x *= 0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
	x ^= x >> 29
	return x % s.nbits
}

// Add inserts block.
func (s *Signature) Add(block uint64) {
	for i := 0; i < s.hashes; i++ {
		h := s.pbxHash(block, i)
		s.bits[h/64] |= 1 << (h % 64)
	}
	if _, ok := s.exact.Find(block); !ok {
		s.exact.Add(block, struct{}{})
	}
}

// MayContain reports whether block may be in the signature (possibly a
// false positive).
func (s *Signature) MayContain(block uint64) bool {
	for i := 0; i < s.hashes; i++ {
		h := s.pbxHash(block, i)
		if s.bits[h/64]&(1<<(h%64)) == 0 {
			return false
		}
	}
	return true
}

// Contains reports exact membership (simulation-only).
func (s *Signature) Contains(block uint64) bool {
	_, ok := s.exact.Find(block)
	return ok
}

// Size reports exact inserted-block count.
func (s *Signature) Size() int { return s.exact.N }

// Reset clears the signature.
func (s *Signature) Reset() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.exact.Reset()
}

// SigTracker models P8S: the P8 buffer backed by a read signature. When the
// buffer is full, further reads spill into the signature (unbounded readset,
// subject to false positives); writes remain bounded by the buffer.
type SigTracker struct {
	buf *P8Tracker
	sig *Signature
}

// NewSigTracker builds a P8S tracker.
func NewSigTracker(capacity int, sigBits uint64, hashes int) *SigTracker {
	return &SigTracker{
		buf: NewP8Tracker(capacity),
		sig: NewSignature(sigBits, hashes),
	}
}

// TrackRead implements Tracker: reads never overflow.
func (t *SigTracker) TrackRead(block uint64) bool {
	if t.buf.TrackRead(block) {
		return true
	}
	t.sig.Add(block)
	return true
}

// TrackWrite implements Tracker: writes are bounded by the buffer, but a
// full buffer first spills one read-only entry into the signature to make
// room — only a buffer full of writes overflows.
func (t *SigTracker) TrackWrite(block uint64) bool {
	if t.buf.TrackWrite(block) {
		return true
	}
	// Deterministic victim choice (lowest block) keeps simulations
	// reproducible despite probe-order table layout.
	tab := &t.buf.tab
	victim, found := uint64(0), false
	for i, g := range tab.Gens {
		if g == tab.Gen && tab.Vals[i] == bitRead {
			if b := tab.Keys[i]; !found || b < victim {
				victim, found = b, true
			}
		}
	}
	if !found {
		return false
	}
	tab.Del(victim)
	t.sig.Add(victim)
	return t.buf.TrackWrite(block)
}

// CheckRemote implements Tracker: buffer hits are precise; signature hits on
// remote writes may be false positives.
func (t *SigTracker) CheckRemote(block uint64, remoteWrite bool) (bool, bool) {
	if c, _ := t.buf.CheckRemote(block, remoteWrite); c {
		return true, false
	}
	if remoteWrite && t.sig.MayContain(block) {
		return true, !t.sig.Contains(block)
	}
	return false, false
}

// NotifyEviction implements Tracker.
func (t *SigTracker) NotifyEviction(uint64) bool { return true }

// ReadSetSize implements Tracker (buffer + signature exact count).
func (t *SigTracker) ReadSetSize() int { return t.buf.ReadSetSize() + t.sig.Size() }

// WriteSetSize implements Tracker.
func (t *SigTracker) WriteSetSize() int { return t.buf.WriteSetSize() }

// DistinctBlocks implements Tracker: buffer entries plus signature-resident
// overflow blocks (disjoint by construction).
func (t *SigTracker) DistinctBlocks() int { return t.buf.tab.N + t.sig.Size() }

// Reset implements Tracker.
func (t *SigTracker) Reset() {
	t.buf.Reset()
	t.sig.Reset()
}

// L1Tracker models HTMs that track transactional state with metadata bits in
// the private L1 cache (Intel-style / the paper's L1TM): capacity is the L1
// itself, and evicting a tracked line loses the state — a capacity abort
// (including set-conflict misses).
type L1Tracker struct {
	tab flat.Tab[rwBits]
}

// NewL1Tracker builds an in-L1 tracker.
func NewL1Tracker() *L1Tracker {
	t := &L1Tracker{}
	t.tab.Init(512, false)
	return t
}

func trackUnbounded(tab *flat.Tab[rwBits], block uint64, bit rwBits) {
	if i, ok := tab.Find(block); ok {
		tab.Vals[i] |= bit
		return
	}
	tab.Add(block, bit)
}

// TrackRead implements Tracker: insertion always succeeds (the line was just
// brought into the L1); loss happens via NotifyEviction.
func (t *L1Tracker) TrackRead(block uint64) bool {
	trackUnbounded(&t.tab, block, bitRead)
	return true
}

// TrackWrite implements Tracker.
func (t *L1Tracker) TrackWrite(block uint64) bool {
	trackUnbounded(&t.tab, block, bitWrite)
	return true
}

// CheckRemote implements Tracker.
func (t *L1Tracker) CheckRemote(block uint64, remoteWrite bool) (bool, bool) {
	i, ok := t.tab.Find(block)
	if !ok {
		return false, false
	}
	if remoteWrite {
		return true, false
	}
	return t.tab.Vals[i]&bitWrite != 0, false
}

// NotifyEviction implements Tracker: losing a tracked line aborts.
func (t *L1Tracker) NotifyEviction(block uint64) bool {
	_, tracked := t.tab.Find(block)
	return !tracked
}

// ReadSetSize implements Tracker.
func (t *L1Tracker) ReadSetSize() int { return countBits(&t.tab, bitRead) }

// WriteSetSize implements Tracker.
func (t *L1Tracker) WriteSetSize() int { return countBits(&t.tab, bitWrite) }

// DistinctBlocks implements Tracker.
func (t *L1Tracker) DistinctBlocks() int { return t.tab.N }

// Reset implements Tracker.
func (t *L1Tracker) Reset() { t.tab.Reset() }

// InfTracker is the InfCap upper bound: unbounded precise tracking.
type InfTracker struct {
	tab flat.Tab[rwBits]
}

// NewInfTracker builds an unbounded tracker.
func NewInfTracker() *InfTracker {
	t := &InfTracker{}
	t.tab.Init(512, false)
	return t
}

// TrackRead implements Tracker.
func (t *InfTracker) TrackRead(block uint64) bool {
	trackUnbounded(&t.tab, block, bitRead)
	return true
}

// TrackWrite implements Tracker.
func (t *InfTracker) TrackWrite(block uint64) bool {
	trackUnbounded(&t.tab, block, bitWrite)
	return true
}

// CheckRemote implements Tracker.
func (t *InfTracker) CheckRemote(block uint64, remoteWrite bool) (bool, bool) {
	i, ok := t.tab.Find(block)
	if !ok {
		return false, false
	}
	if remoteWrite {
		return true, false
	}
	return t.tab.Vals[i]&bitWrite != 0, false
}

// NotifyEviction implements Tracker.
func (t *InfTracker) NotifyEviction(uint64) bool { return true }

// ReadSetSize implements Tracker.
func (t *InfTracker) ReadSetSize() int { return countBits(&t.tab, bitRead) }

// WriteSetSize implements Tracker.
func (t *InfTracker) WriteSetSize() int { return countBits(&t.tab, bitWrite) }

// DistinctBlocks implements Tracker.
func (t *InfTracker) DistinctBlocks() int { return t.tab.N }

// Reset implements Tracker.
func (t *InfTracker) Reset() { t.tab.Reset() }

// Interface conformance checks.
var (
	_ Tracker = (*P8Tracker)(nil)
	_ Tracker = (*SigTracker)(nil)
	_ Tracker = (*L1Tracker)(nil)
	_ Tracker = (*InfTracker)(nil)
)
