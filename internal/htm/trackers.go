package htm

// rwBits records read/write membership for a tracked block.
type rwBits uint8

const (
	bitRead rwBits = 1 << iota
	bitWrite
)

// P8Tracker models IBM POWER8's dedicated 64-entry fully-associative
// transactional buffer: readset and writeset share the same structure, one
// entry per cache block.
type P8Tracker struct {
	entries  map[uint64]rwBits
	capacity int
}

// NewP8Tracker returns a buffer of the given entry count (the paper uses 64).
func NewP8Tracker(capacity int) *P8Tracker {
	return &P8Tracker{entries: make(map[uint64]rwBits, capacity), capacity: capacity}
}

func (t *P8Tracker) track(block uint64, bit rwBits) bool {
	if b, ok := t.entries[block]; ok {
		t.entries[block] = b | bit
		return true
	}
	if len(t.entries) >= t.capacity {
		return false
	}
	t.entries[block] = bit
	return true
}

// TrackRead implements Tracker.
func (t *P8Tracker) TrackRead(block uint64) bool { return t.track(block, bitRead) }

// TrackWrite implements Tracker.
func (t *P8Tracker) TrackWrite(block uint64) bool { return t.track(block, bitWrite) }

// CheckRemote implements Tracker: a remote write conflicts with any tracked
// block; a remote read conflicts with a tracked write.
func (t *P8Tracker) CheckRemote(block uint64, remoteWrite bool) (bool, bool) {
	b, ok := t.entries[block]
	if !ok {
		return false, false
	}
	if remoteWrite {
		return true, false
	}
	return b&bitWrite != 0, false
}

// NotifyEviction implements Tracker: the dedicated buffer is decoupled from
// the L1, so evictions are harmless.
func (t *P8Tracker) NotifyEviction(uint64) bool { return true }

// ReadSetSize implements Tracker.
func (t *P8Tracker) ReadSetSize() int { return t.count(bitRead) }

// WriteSetSize implements Tracker.
func (t *P8Tracker) WriteSetSize() int { return t.count(bitWrite) }

func (t *P8Tracker) count(bit rwBits) int {
	n := 0
	for _, b := range t.entries {
		if b&bit != 0 {
			n++
		}
	}
	return n
}

// DistinctBlocks implements Tracker.
func (t *P8Tracker) DistinctBlocks() int { return len(t.entries) }

// Reset implements Tracker.
func (t *P8Tracker) Reset() {
	for k := range t.entries {
		delete(t.entries, k)
	}
}

// Signature is a PBX-style hardware signature: a Bloom-like bitvector that
// summarizes overflowed readset addresses. Membership tests can alias,
// producing false conflicts (paper §II-A).
type Signature struct {
	bits   []uint64
	nbits  uint64
	hashes int
	// exact is simulation-only bookkeeping used to label a signature hit
	// as a true conflict or a false positive; real hardware cannot tell.
	exact map[uint64]struct{}
}

// NewSignature builds a signature of nbits (the paper's P8S uses 1024) with
// the given number of hash functions.
func NewSignature(nbits uint64, hashes int) *Signature {
	return &Signature{
		bits:   make([]uint64, (nbits+63)/64),
		nbits:  nbits,
		hashes: hashes,
		exact:  make(map[uint64]struct{}),
	}
}

// pbxHash implements the page-block-XOR family: the block address's upper
// (page) bits are XOR-folded onto the lower (block-in-page) bits, giving
// cheap, well-distributed indices.
func (s *Signature) pbxHash(block uint64, i int) uint64 {
	x := block
	x ^= x >> 6
	x *= 0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9
	x ^= x >> 29
	return x % s.nbits
}

// Add inserts block.
func (s *Signature) Add(block uint64) {
	for i := 0; i < s.hashes; i++ {
		h := s.pbxHash(block, i)
		s.bits[h/64] |= 1 << (h % 64)
	}
	s.exact[block] = struct{}{}
}

// MayContain reports whether block may be in the signature (possibly a
// false positive).
func (s *Signature) MayContain(block uint64) bool {
	for i := 0; i < s.hashes; i++ {
		h := s.pbxHash(block, i)
		if s.bits[h/64]&(1<<(h%64)) == 0 {
			return false
		}
	}
	return true
}

// Contains reports exact membership (simulation-only).
func (s *Signature) Contains(block uint64) bool {
	_, ok := s.exact[block]
	return ok
}

// Size reports exact inserted-block count.
func (s *Signature) Size() int { return len(s.exact) }

// Reset clears the signature.
func (s *Signature) Reset() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	for k := range s.exact {
		delete(s.exact, k)
	}
}

// SigTracker models P8S: the P8 buffer backed by a read signature. When the
// buffer is full, further reads spill into the signature (unbounded readset,
// subject to false positives); writes remain bounded by the buffer.
type SigTracker struct {
	buf *P8Tracker
	sig *Signature
}

// NewSigTracker builds a P8S tracker.
func NewSigTracker(capacity int, sigBits uint64, hashes int) *SigTracker {
	return &SigTracker{
		buf: NewP8Tracker(capacity),
		sig: NewSignature(sigBits, hashes),
	}
}

// TrackRead implements Tracker: reads never overflow.
func (t *SigTracker) TrackRead(block uint64) bool {
	if t.buf.TrackRead(block) {
		return true
	}
	t.sig.Add(block)
	return true
}

// TrackWrite implements Tracker: writes are bounded by the buffer, but a
// full buffer first spills one read-only entry into the signature to make
// room — only a buffer full of writes overflows.
func (t *SigTracker) TrackWrite(block uint64) bool {
	if t.buf.TrackWrite(block) {
		return true
	}
	// Deterministic victim choice (lowest block) keeps simulations
	// reproducible despite map iteration order.
	victim, found := uint64(0), false
	for b, bits := range t.buf.entries {
		if bits == bitRead && (!found || b < victim) {
			victim, found = b, true
		}
	}
	if !found {
		return false
	}
	delete(t.buf.entries, victim)
	t.sig.Add(victim)
	return t.buf.TrackWrite(block)
}

// CheckRemote implements Tracker: buffer hits are precise; signature hits on
// remote writes may be false positives.
func (t *SigTracker) CheckRemote(block uint64, remoteWrite bool) (bool, bool) {
	if c, _ := t.buf.CheckRemote(block, remoteWrite); c {
		return true, false
	}
	if remoteWrite && t.sig.MayContain(block) {
		return true, !t.sig.Contains(block)
	}
	return false, false
}

// NotifyEviction implements Tracker.
func (t *SigTracker) NotifyEviction(uint64) bool { return true }

// ReadSetSize implements Tracker (buffer + signature exact count).
func (t *SigTracker) ReadSetSize() int { return t.buf.ReadSetSize() + t.sig.Size() }

// WriteSetSize implements Tracker.
func (t *SigTracker) WriteSetSize() int { return t.buf.WriteSetSize() }

// DistinctBlocks implements Tracker: buffer entries plus signature-resident
// overflow blocks (disjoint by construction).
func (t *SigTracker) DistinctBlocks() int { return len(t.buf.entries) + t.sig.Size() }

// Reset implements Tracker.
func (t *SigTracker) Reset() {
	t.buf.Reset()
	t.sig.Reset()
}

// L1Tracker models HTMs that track transactional state with metadata bits in
// the private L1 cache (Intel-style / the paper's L1TM): capacity is the L1
// itself, and evicting a tracked line loses the state — a capacity abort
// (including set-conflict misses).
type L1Tracker struct {
	entries map[uint64]rwBits
}

// NewL1Tracker builds an in-L1 tracker.
func NewL1Tracker() *L1Tracker {
	return &L1Tracker{entries: make(map[uint64]rwBits)}
}

// TrackRead implements Tracker: insertion always succeeds (the line was just
// brought into the L1); loss happens via NotifyEviction.
func (t *L1Tracker) TrackRead(block uint64) bool {
	t.entries[block] |= bitRead
	return true
}

// TrackWrite implements Tracker.
func (t *L1Tracker) TrackWrite(block uint64) bool {
	t.entries[block] |= bitWrite
	return true
}

// CheckRemote implements Tracker.
func (t *L1Tracker) CheckRemote(block uint64, remoteWrite bool) (bool, bool) {
	b, ok := t.entries[block]
	if !ok {
		return false, false
	}
	if remoteWrite {
		return true, false
	}
	return b&bitWrite != 0, false
}

// NotifyEviction implements Tracker: losing a tracked line aborts.
func (t *L1Tracker) NotifyEviction(block uint64) bool {
	_, tracked := t.entries[block]
	return !tracked
}

// ReadSetSize implements Tracker.
func (t *L1Tracker) ReadSetSize() int { return t.count(bitRead) }

// WriteSetSize implements Tracker.
func (t *L1Tracker) WriteSetSize() int { return t.count(bitWrite) }

func (t *L1Tracker) count(bit rwBits) int {
	n := 0
	for _, b := range t.entries {
		if b&bit != 0 {
			n++
		}
	}
	return n
}

// DistinctBlocks implements Tracker.
func (t *L1Tracker) DistinctBlocks() int { return len(t.entries) }

// Reset implements Tracker.
func (t *L1Tracker) Reset() {
	for k := range t.entries {
		delete(t.entries, k)
	}
}

// InfTracker is the InfCap upper bound: unbounded precise tracking.
type InfTracker struct {
	entries map[uint64]rwBits
}

// NewInfTracker builds an unbounded tracker.
func NewInfTracker() *InfTracker {
	return &InfTracker{entries: make(map[uint64]rwBits)}
}

// TrackRead implements Tracker.
func (t *InfTracker) TrackRead(block uint64) bool {
	t.entries[block] |= bitRead
	return true
}

// TrackWrite implements Tracker.
func (t *InfTracker) TrackWrite(block uint64) bool {
	t.entries[block] |= bitWrite
	return true
}

// CheckRemote implements Tracker.
func (t *InfTracker) CheckRemote(block uint64, remoteWrite bool) (bool, bool) {
	b, ok := t.entries[block]
	if !ok {
		return false, false
	}
	if remoteWrite {
		return true, false
	}
	return b&bitWrite != 0, false
}

// NotifyEviction implements Tracker.
func (t *InfTracker) NotifyEviction(uint64) bool { return true }

// ReadSetSize implements Tracker.
func (t *InfTracker) ReadSetSize() int { return t.count(bitRead) }

// WriteSetSize implements Tracker.
func (t *InfTracker) WriteSetSize() int { return t.count(bitWrite) }

func (t *InfTracker) count(bit rwBits) int {
	n := 0
	for _, b := range t.entries {
		if b&bit != 0 {
			n++
		}
	}
	return n
}

// DistinctBlocks implements Tracker.
func (t *InfTracker) DistinctBlocks() int { return len(t.entries) }

// Reset implements Tracker.
func (t *InfTracker) Reset() {
	for k := range t.entries {
		delete(t.entries, k)
	}
}

// Interface conformance checks.
var (
	_ Tracker = (*P8Tracker)(nil)
	_ Tracker = (*SigTracker)(nil)
	_ Tracker = (*L1Tracker)(nil)
	_ Tracker = (*InfTracker)(nil)
)
