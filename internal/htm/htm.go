// Package htm models conventional bounded Hardware Transactional Memory
// controllers with eager (2PL-style) conflict detection, as evaluated in the
// paper: the POWER8-style dedicated transactional buffer (P8), P8 extended
// with PBX hardware signatures for readset overflow (P8S), in-L1 tracking
// (L1TM), and an infinite-capacity upper bound (InfCap).
//
// A Controller holds one hardware context's transactional state: the
// tracking structure (Tracker), the undo log for eager version management,
// and the touched-page set HinTM needs for page-mode aborts. The simulator
// machine drives it: every transactional memory access is offered with its
// HinTM safety hint; hinted-safe accesses skip tracking entirely, which is
// the paper's entire mechanism — the bounded structure holds only unsafe
// state.
package htm

import "fmt"

// AbortReason classifies transaction aborts.
type AbortReason uint8

// Abort reasons.
const (
	AbortNone AbortReason = iota
	// AbortConflict: a true data conflict with another transaction.
	AbortConflict
	// AbortFalseConflict: a signature false positive (P8S only).
	AbortFalseConflict
	// AbortCapacity: the tracking structure overflowed.
	AbortCapacity
	// AbortPageMode: a page this TX touched transitioned safe→unsafe
	// (HinTM dynamic classification).
	AbortPageMode
	// AbortFallbackLock: another thread acquired the fallback lock.
	AbortFallbackLock
	// AbortExplicit: the program requested an abort.
	AbortExplicit
)

func (r AbortReason) String() string {
	switch r {
	case AbortNone:
		return "none"
	case AbortConflict:
		return "conflict"
	case AbortFalseConflict:
		return "false-conflict"
	case AbortCapacity:
		return "capacity"
	case AbortPageMode:
		return "page-mode"
	case AbortFallbackLock:
		return "fallback-lock"
	case AbortExplicit:
		return "explicit"
	}
	return fmt.Sprintf("abort(%d)", uint8(r))
}

// Tracker abstracts the bounded hardware structure that records a
// transaction's read and write sets at cache-block granularity.
type Tracker interface {
	// TrackRead records a read of block; false means capacity overflow.
	TrackRead(block uint64) bool
	// TrackWrite records a write of block; false means capacity overflow.
	TrackWrite(block uint64) bool
	// CheckRemote checks a snooped bus operation against the tracked sets.
	// It returns whether the operation conflicts and whether that conflict
	// is a false positive (signature aliasing).
	CheckRemote(block uint64, remoteWrite bool) (conflict, falsePositive bool)
	// NotifyEviction reports that the local L1 evicted block; false means
	// the tracker lost transactional state (in-L1 tracking).
	NotifyEviction(block uint64) bool
	// ReadSet/WriteSet sizes in blocks (exact, for statistics).
	ReadSetSize() int
	WriteSetSize() int
	// DistinctBlocks is the tracked-entry count: blocks both read and
	// written occupy ONE entry, so this — not readset+writeset — is the
	// capacity-relevant footprint.
	DistinctBlocks() int
	// Reset clears all tracked state.
	Reset()
}

// UndoEntry is one eager-versioning log record.
type UndoEntry struct {
	Addr uint64
	Old  int64
}

// Controller is one hardware context's HTM state machine.
type Controller struct {
	tracker Tracker

	active     bool
	versioning Versioning
	undoLog    []UndoEntry
	// writeBuf holds lazily-versioned stores until commit (VersionLazy).
	writeBuf map[uint64]int64
	// touched records every page the running TX accessed (safe accesses
	// included): HinTM's page-mode aborts key off it (paper Table I).
	touched map[uint64]struct{}
}

// NewController wraps a tracker.
func NewController(tr Tracker) *Controller {
	return &Controller{tracker: tr, touched: make(map[uint64]struct{})}
}

// Active reports whether a transaction is running.
func (c *Controller) Active() bool { return c.active }

// Begin opens a transaction. Panics if one is already open: the interpreter
// guarantees non-nested TXs.
func (c *Controller) Begin() {
	if c.active {
		panic("htm: nested transaction")
	}
	c.active = true
}

// Access offers a transactional memory access with its safety hint. It
// records the touched page, and tracks the block unless hinted safe.
// It returns AbortCapacity when tracking overflows, else AbortNone.
func (c *Controller) Access(block, page uint64, write, safe bool) AbortReason {
	if !c.active {
		return AbortNone
	}
	c.touched[page] = struct{}{}
	if safe {
		return AbortNone
	}
	ok := true
	if write {
		ok = c.tracker.TrackWrite(block)
	} else {
		ok = c.tracker.TrackRead(block)
	}
	if !ok {
		return AbortCapacity
	}
	return AbortNone
}

// RecordUndo logs the pre-image of an unsafe transactional store. Safe
// stores are initializing and deliberately not logged — exactly the
// hardware behaviour HinTM's hint enables.
func (c *Controller) RecordUndo(addr uint64, old int64) {
	if c.active {
		c.undoLog = append(c.undoLog, UndoEntry{Addr: addr, Old: old})
	}
}

// OnRemoteOp processes a snooped bus transaction from another context.
// It returns the abort reason the running TX suffers (AbortNone if none).
func (c *Controller) OnRemoteOp(block uint64, remoteWrite bool) AbortReason {
	if !c.active {
		return AbortNone
	}
	conflict, falsePositive := c.tracker.CheckRemote(block, remoteWrite)
	switch {
	case !conflict:
		return AbortNone
	case falsePositive:
		return AbortFalseConflict
	default:
		return AbortConflict
	}
}

// OnLocalEviction reports an L1 eviction on this context's core; for in-L1
// trackers this can be a capacity (set-conflict) abort.
func (c *Controller) OnLocalEviction(block uint64) AbortReason {
	if !c.active {
		return AbortNone
	}
	if !c.tracker.NotifyEviction(block) {
		return AbortCapacity
	}
	return AbortNone
}

// OnPageModeTransition reports a page turning unsafe; the TX aborts if it
// touched the page.
func (c *Controller) OnPageModeTransition(page uint64) AbortReason {
	if !c.active {
		return AbortNone
	}
	if _, ok := c.touched[page]; ok {
		return AbortPageMode
	}
	return AbortNone
}

// TouchedPage reports whether the running TX touched page.
func (c *Controller) TouchedPage(page uint64) bool {
	_, ok := c.touched[page]
	return ok
}

// FootprintBlocks returns the tracked footprint in distinct blocks (the
// capacity-relevant size: a block both read and written occupies one entry).
func (c *Controller) FootprintBlocks() int {
	return c.tracker.DistinctBlocks()
}

// Commit closes the transaction, discarding the undo log.
func (c *Controller) Commit() {
	c.clear()
}

// Abort closes the transaction and returns the undo log in reverse
// (application) order; the machine restores memory from it.
func (c *Controller) Abort() []UndoEntry {
	log := c.undoLog
	// Reverse in place: oldest record must be applied last.
	for i, j := 0, len(log)-1; i < j; i, j = i+1, j-1 {
		log[i], log[j] = log[j], log[i]
	}
	c.undoLog = nil
	c.clear()
	return log
}

func (c *Controller) clear() {
	c.active = false
	c.undoLog = c.undoLog[:0]
	c.writeBuf = nil
	c.tracker.Reset()
	for p := range c.touched {
		delete(c.touched, p)
	}
}
