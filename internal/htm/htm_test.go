package htm

import (
	"testing"
	"testing/quick"
)

func TestP8CapacityOverflow(t *testing.T) {
	tr := NewP8Tracker(4)
	for b := uint64(0); b < 4; b++ {
		if !tr.TrackRead(b) {
			t.Fatalf("block %d should fit", b)
		}
	}
	if tr.TrackRead(99) {
		t.Fatal("5th distinct block must overflow")
	}
	// Re-touching a resident block is free.
	if !tr.TrackWrite(2) {
		t.Fatal("upgrading a resident entry must not overflow")
	}
	if tr.ReadSetSize() != 4 || tr.WriteSetSize() != 1 {
		t.Fatalf("sets: r=%d w=%d", tr.ReadSetSize(), tr.WriteSetSize())
	}
}

func TestP8ConflictMatrix(t *testing.T) {
	tr := NewP8Tracker(8)
	tr.TrackRead(1)
	tr.TrackWrite(2)
	cases := []struct {
		block       uint64
		remoteWrite bool
		conflict    bool
	}{
		{1, true, true},   // remote write vs read
		{1, false, false}, // remote read vs read: fine
		{2, true, true},   // remote write vs write
		{2, false, true},  // remote read vs write
		{3, true, false},  // untracked
	}
	for _, c := range cases {
		got, fp := tr.CheckRemote(c.block, c.remoteWrite)
		if got != c.conflict || fp {
			t.Errorf("CheckRemote(%d, w=%v) = (%v,%v), want (%v,false)",
				c.block, c.remoteWrite, got, fp, c.conflict)
		}
	}
}

func TestP8ResetAndEviction(t *testing.T) {
	tr := NewP8Tracker(2)
	tr.TrackRead(1)
	if !tr.NotifyEviction(1) {
		t.Fatal("dedicated buffer must survive L1 evictions")
	}
	tr.Reset()
	if tr.ReadSetSize() != 0 {
		t.Fatal("reset did not clear")
	}
	if !tr.TrackRead(5) || !tr.TrackRead(6) {
		t.Fatal("capacity not restored after reset")
	}
}

func TestSigTrackerUnboundedReads(t *testing.T) {
	tr := NewSigTracker(4, 1024, 2)
	for b := uint64(0); b < 100; b++ {
		if !tr.TrackRead(b) {
			t.Fatalf("read of block %d overflowed despite signature", b)
		}
	}
	if tr.ReadSetSize() != 100 {
		t.Fatalf("readset size %d, want 100", tr.ReadSetSize())
	}
	// A write to a buffer full of reads spills one read into the signature.
	if !tr.TrackWrite(200) {
		t.Fatal("write should displace a read entry into the signature")
	}
	// But a buffer full of writes is a hard bound.
	for b := uint64(300); b < 304; b++ {
		tr.TrackWrite(b)
	}
	if tr.TrackWrite(400) {
		t.Fatal("write-full buffer must overflow")
	}
	if tr.WriteSetSize() != 4 {
		t.Fatalf("writeset size %d, want 4", tr.WriteSetSize())
	}
}

func TestSigTrackerDetectsOverflowedReadConflicts(t *testing.T) {
	tr := NewSigTracker(2, 4096, 2)
	for b := uint64(0); b < 50; b++ {
		tr.TrackRead(b)
	}
	// Block 40 overflowed into the signature; a remote write must conflict
	// and be classified as a true conflict.
	conflict, fp := tr.CheckRemote(40, true)
	if !conflict || fp {
		t.Fatalf("overflowed-read conflict = (%v,%v), want (true,false)", conflict, fp)
	}
	// Remote reads never hit the signature.
	if c, _ := tr.CheckRemote(40, false); c {
		t.Fatal("remote read must not conflict with readset")
	}
}

func TestSigTrackerFalsePositive(t *testing.T) {
	// A tiny signature with many inserts will alias. Find an address not
	// inserted that still tests positive.
	tr := NewSigTracker(1, 64, 2)
	for b := uint64(0); b < 64; b++ {
		tr.TrackRead(b)
	}
	found := false
	for b := uint64(1000); b < 3000; b++ {
		conflict, fp := tr.CheckRemote(b, true)
		if conflict && fp {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("saturated signature produced no false positive")
	}
}

func TestSignatureNoFalseNegatives(t *testing.T) {
	f := func(blocks []uint64, probe uint64) bool {
		s := NewSignature(256, 2)
		for _, b := range blocks {
			s.Add(b)
		}
		for _, b := range blocks {
			if !s.MayContain(b) {
				return false // Bloom-style filters never false-negative
			}
		}
		_ = probe
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL1TrackerEvictionAborts(t *testing.T) {
	tr := NewL1Tracker()
	tr.TrackRead(7)
	if tr.NotifyEviction(8) != true {
		t.Fatal("evicting untracked block must be fine")
	}
	if tr.NotifyEviction(7) != false {
		t.Fatal("evicting tracked block must signal capacity abort")
	}
}

func TestInfTrackerNeverOverflows(t *testing.T) {
	tr := NewInfTracker()
	for b := uint64(0); b < 10000; b++ {
		if !tr.TrackRead(b) || !tr.TrackWrite(b+1000000) {
			t.Fatal("InfCap overflowed")
		}
	}
	if !tr.NotifyEviction(5) {
		t.Fatal("InfCap must ignore evictions")
	}
}

func TestControllerLifecycle(t *testing.T) {
	c := NewController(NewP8Tracker(4))
	if c.Active() {
		t.Fatal("fresh controller active")
	}
	c.Begin()
	if r := c.Access(1, 0, false, false); r != AbortNone {
		t.Fatalf("tracked read: %v", r)
	}
	if r := c.Access(2, 0, true, false); r != AbortNone {
		t.Fatalf("tracked write: %v", r)
	}
	c.RecordUndo(0x100, 42)
	if !c.TouchedPage(0) {
		t.Fatal("page not recorded")
	}
	c.Commit()
	if c.Active() || c.FootprintBlocks() != 0 {
		t.Fatal("commit did not clear state")
	}
}

func TestControllerSafeAccessSkipsTracking(t *testing.T) {
	c := NewController(NewP8Tracker(2))
	c.Begin()
	for b := uint64(0); b < 100; b++ {
		if r := c.Access(b, b/64, false, true); r != AbortNone {
			t.Fatalf("safe access aborted: %v", r)
		}
	}
	if c.FootprintBlocks() != 0 {
		t.Fatalf("safe accesses consumed %d entries", c.FootprintBlocks())
	}
	// The pages were still recorded for page-mode aborts.
	if !c.TouchedPage(0) {
		t.Fatal("safe access page not recorded")
	}
	// Unsafe accesses still bounded.
	c.Access(200, 3, false, false)
	c.Access(201, 3, false, false)
	if r := c.Access(202, 3, false, false); r != AbortCapacity {
		t.Fatalf("expected capacity abort, got %v", r)
	}
}

func TestControllerUndoLogReversed(t *testing.T) {
	c := NewController(NewInfTracker())
	c.Begin()
	c.RecordUndo(8, 1)
	c.RecordUndo(16, 2)
	c.RecordUndo(8, 3) // second write to same addr
	log := c.Abort()
	if len(log) != 3 {
		t.Fatalf("undo entries = %d", len(log))
	}
	if log[0].Addr != 8 || log[0].Old != 3 || log[2].Addr != 8 || log[2].Old != 1 {
		t.Fatalf("undo order wrong: %+v", log)
	}
	if c.Active() {
		t.Fatal("abort left controller active")
	}
}

func TestControllerRemoteOpAndPageMode(t *testing.T) {
	c := NewController(NewP8Tracker(8))
	c.Begin()
	c.Access(1, 0, false, false)
	if r := c.OnRemoteOp(1, true); r != AbortConflict {
		t.Fatalf("remote write on read block: %v", r)
	}
	// Abort wasn't executed by controller — the machine does that. Clear:
	c.Abort()
	c.Begin()
	c.Access(64, 1, false, true) // safe access to page 1
	if r := c.OnPageModeTransition(1); r != AbortPageMode {
		t.Fatalf("page-mode transition: %v", r)
	}
	if r := c.OnPageModeTransition(9); r != AbortNone {
		t.Fatalf("untouched page transition: %v", r)
	}
}

func TestControllerInactiveIgnoresEvents(t *testing.T) {
	c := NewController(NewL1Tracker())
	if c.OnRemoteOp(1, true) != AbortNone ||
		c.OnLocalEviction(1) != AbortNone ||
		c.OnPageModeTransition(1) != AbortNone ||
		c.Access(1, 0, true, false) != AbortNone {
		t.Fatal("inactive controller must ignore events")
	}
}

func TestControllerL1EvictionCapacity(t *testing.T) {
	c := NewController(NewL1Tracker())
	c.Begin()
	c.Access(5, 0, true, false)
	if r := c.OnLocalEviction(5); r != AbortCapacity {
		t.Fatalf("tracked-line eviction: %v", r)
	}
}

func TestAbortReasonStrings(t *testing.T) {
	reasons := []AbortReason{AbortNone, AbortConflict, AbortFalseConflict,
		AbortCapacity, AbortPageMode, AbortFallbackLock, AbortExplicit}
	seen := map[string]bool{}
	for _, r := range reasons {
		s := r.String()
		if seen[s] {
			t.Errorf("duplicate reason name %q", s)
		}
		seen[s] = true
	}
}

func TestNestedBeginPanics(t *testing.T) {
	c := NewController(NewInfTracker())
	c.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nested Begin")
		}
	}()
	c.Begin()
}

// --- tracker parity: every Tracker implementation obeys the same contract ---

func TestTrackerContractParity(t *testing.T) {
	trackers := map[string]Tracker{
		"p8":  NewP8Tracker(64),
		"p8s": NewSigTracker(64, 1024, 2),
		"l1":  NewL1Tracker(),
		"inf": NewInfTracker(),
	}
	for name, tr := range trackers {
		t.Run(name, func(t *testing.T) {
			tr.TrackRead(1)
			tr.TrackWrite(2)
			tr.TrackRead(2) // read of a written block: still one entry

			if got := tr.DistinctBlocks(); got != 2 {
				t.Fatalf("DistinctBlocks = %d, want 2", got)
			}
			if tr.ReadSetSize() < 2 || tr.WriteSetSize() != 1 {
				t.Fatalf("sets r=%d w=%d", tr.ReadSetSize(), tr.WriteSetSize())
			}
			if c, _ := tr.CheckRemote(2, false); !c {
				t.Fatal("remote read of written block must conflict")
			}
			if c, _ := tr.CheckRemote(1, true); !c {
				t.Fatal("remote write of read block must conflict")
			}
			if c, _ := tr.CheckRemote(1, false); c {
				t.Fatal("remote read of read block must not conflict")
			}
			if c, _ := tr.CheckRemote(99, true); c {
				t.Fatal("untracked block must not conflict")
			}
			tr.Reset()
			if tr.DistinctBlocks() != 0 || tr.ReadSetSize() != 0 || tr.WriteSetSize() != 0 {
				t.Fatal("reset left state")
			}
		})
	}
}

// --- versioning unit tests ---

func TestVersioningBufferSemantics(t *testing.T) {
	c := NewController(NewInfTracker())
	c.SetVersioning(VersionLazy)
	if !c.Lazy() || c.Versioning() != VersionLazy {
		t.Fatal("versioning selection broken")
	}
	c.Begin()
	c.BufferWrite(0x100, 7)
	c.BufferWrite(0x108, 8)
	c.BufferWrite(0x100, 9) // overwrite: final value wins
	if v, ok := c.ForwardRead(0x100); !ok || v != 9 {
		t.Fatalf("forward = %d,%v", v, ok)
	}
	if _, ok := c.ForwardRead(0x999); ok {
		t.Fatal("unbuffered address forwarded")
	}
	if c.BufferedWrites() != 2 {
		t.Fatalf("buffered = %d", c.BufferedWrites())
	}
	buf := make(map[uint64]int64)
	n := c.Drain(func(a uint64, v int64) { buf[a] = v })
	if n != 2 || len(buf) != 2 || buf[0x100] != 9 || buf[0x108] != 8 {
		t.Fatalf("drain = %d %v", n, buf)
	}
	if c.BufferedWrites() != 0 {
		t.Fatal("drain did not clear")
	}
	c.Commit()
}

func TestVersioningAbortDiscardsBuffer(t *testing.T) {
	c := NewController(NewInfTracker())
	c.SetVersioning(VersionLazy)
	c.Begin()
	c.BufferWrite(0x100, 7)
	undo := c.Abort()
	if len(undo) != 0 {
		t.Fatal("lazy abort should have no undo records")
	}
	c.Begin()
	if _, ok := c.ForwardRead(0x100); ok {
		t.Fatal("abort leaked buffered write into next TX")
	}
	c.Commit()
}

func TestSetVersioningMidTxPanics(t *testing.T) {
	c := NewController(NewInfTracker())
	c.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic switching versioning mid-TX")
		}
	}()
	c.SetVersioning(VersionLazy)
}

func TestBufferWriteOutsideTxPanics(t *testing.T) {
	c := NewController(NewInfTracker())
	c.SetVersioning(VersionLazy)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic buffering outside TX")
		}
	}()
	c.BufferWrite(1, 1)
}
