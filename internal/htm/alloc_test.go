package htm

import "testing"

// The trackers' probe/insert paths back the simulator's per-access hot loop;
// after the first transaction warms the backing tables, steady-state
// tracking must not allocate.

func TestP8TrackerSteadyStateDoesNotAllocate(t *testing.T) {
	tr := NewP8Tracker(64)
	warm := func() {
		tr.Reset()
		for b := uint64(0); b < 64; b++ {
			tr.TrackRead(b)
			tr.TrackWrite(b)
			tr.CheckRemote(b, true)
		}
	}
	warm()
	if n := testing.AllocsPerRun(100, warm); n != 0 {
		t.Errorf("P8 track/check/reset allocates %.1f per transaction", n)
	}
}

func TestSigTrackerSteadyStateDoesNotAllocate(t *testing.T) {
	tr := NewSigTracker(16, 1024, 2)
	warm := func() {
		tr.Reset()
		// Exceed the exact capacity so the signature overflow path runs too.
		for b := uint64(0); b < 32; b++ {
			tr.TrackRead(b)
			tr.CheckRemote(b, true)
		}
		for b := uint64(0); b < 8; b++ {
			tr.TrackWrite(b)
		}
	}
	warm()
	if n := testing.AllocsPerRun(100, warm); n != 0 {
		t.Errorf("signature track/check/reset allocates %.1f per transaction", n)
	}
}

func TestL1TrackerSteadyStateDoesNotAllocate(t *testing.T) {
	tr := NewL1Tracker()
	warm := func() {
		tr.Reset()
		for b := uint64(0); b < 128; b++ {
			tr.TrackRead(b)
			tr.TrackWrite(b)
			tr.CheckRemote(b, false)
		}
		tr.NotifyEviction(5)
	}
	warm() // grows the unbounded table to its steady-state size
	warm()
	if n := testing.AllocsPerRun(100, warm); n != 0 {
		t.Errorf("L1 track/check/reset allocates %.1f per transaction", n)
	}
}
