package htm

// Version management (paper §II-A): transactional stores must be undoable.
// The controller supports both classical disciplines:
//
//   - eager (LogTM/POWER8-style): stores write memory in place and log the
//     pre-image (RecordUndo); aborts restore from the log.
//   - lazy (Intel-TSX/TCC-style): stores are buffered in the controller and
//     become visible only at commit; aborts simply discard the buffer.
//
// Conflict detection stays eager in both modes (coherence-based, at access
// time), matching the commercial designs the paper evaluates. HinTM's hint
// semantics are identical under both: a safe store bypasses versioning
// entirely — no undo record, no write buffering — because the compiler
// proved it initializing.

// Versioning selects the store-versioning discipline.
type Versioning uint8

// Versioning disciplines.
const (
	// VersionEager: in-place writes plus an undo log.
	VersionEager Versioning = iota
	// VersionLazy: writes buffered until commit.
	VersionLazy
)

func (v Versioning) String() string {
	if v == VersionLazy {
		return "lazy"
	}
	return "eager"
}

// SetVersioning selects the discipline (call between transactions).
func (c *Controller) SetVersioning(v Versioning) {
	if c.active {
		panic("htm: cannot switch versioning mid-transaction")
	}
	c.versioning = v
}

// Versioning reports the active discipline.
func (c *Controller) Versioning() Versioning { return c.versioning }

// Lazy reports whether lazy versioning is active.
func (c *Controller) Lazy() bool { return c.versioning == VersionLazy }

// BufferWrite records a lazily-versioned transactional store. The value
// stays invisible to memory until Drain at commit.
func (c *Controller) BufferWrite(addr uint64, val int64) {
	if !c.active {
		panic("htm: BufferWrite outside transaction")
	}
	if i, ok := c.writeBuf.Find(addr); ok {
		c.writeBuf.Vals[i] = val
		return
	}
	c.writeBuf.Add(addr, val)
}

// ForwardRead services a transactional load from the local write buffer
// (store-to-load forwarding); ok is false if the address is unbuffered.
func (c *Controller) ForwardRead(addr uint64) (int64, bool) {
	i, ok := c.writeBuf.Find(addr)
	if !ok {
		return 0, false
	}
	return c.writeBuf.Vals[i], true
}

// Drain applies the buffered writes for commit (in unspecified order —
// each address holds its final value, so ordering cannot matter), clears
// the buffer, and returns the entry count. The machine writes them to
// memory and charges commit latency per entry.
func (c *Controller) Drain(apply func(addr uint64, val int64)) int {
	n := c.writeBuf.N
	for i, g := range c.writeBuf.Gens {
		if g == c.writeBuf.Gen {
			apply(c.writeBuf.Keys[i], c.writeBuf.Vals[i])
		}
	}
	c.writeBuf.Reset()
	return n
}

// BufferedWrites reports the write-buffer entry count.
func (c *Controller) BufferedWrites() int { return c.writeBuf.N }
