// Package workloads provides the transactional benchmark kernels the paper
// evaluates (§V): the eight STAMP applications (bayes, genome, intruder,
// kmeans, labyrinth, ssca2, vacation, yada) and TPC-C's new_order and
// payment queries, re-implemented as TIR programs whose sharing structure,
// transaction footprints, and abort behaviour reproduce the characteristics
// the paper's evaluation attributes to each application.
//
// These are structurally matched kernels, not line-by-line ports: each one
// preserves the property that drives its row in the paper's figures — e.g.
// labyrinth's per-transaction thread-private grid copy (huge statically-safe
// footprint), vacation's read-mostly shared tables on read-write pages,
// kmeans/ssca2's tiny transactions, tpcc-p's conflict-dominated hot rows.
package workloads

import (
	"fmt"

	"hintm/internal/ir"
)

// Scale selects input sizes: Small for unit tests, Medium for the paper's
// P8 experiments, Large for the capacity-pressure studies (P8S, L1TM).
type Scale uint8

// Input scales.
const (
	Small Scale = iota
	Medium
	Large
)

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return fmt.Sprintf("scale(%d)", uint8(s))
}

// ParseScale parses the CLI/API spelling of an input scale
// ("small", "medium", "large").
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want small|medium|large)", s)
}

// pick returns the scale-matched value.
func (s Scale) pick(small, medium, large int64) int64 {
	switch s {
	case Small:
		return small
	case Large:
		return large
	default:
		return medium
	}
}

// fn wraps a FuncBuilder with structured-control-flow helpers and fresh
// label generation, so kernels read like the C they stand in for.
type fn struct {
	*ir.FuncBuilder
	labels int
}

func newFn(fb *ir.FuncBuilder) *fn { return &fn{FuncBuilder: fb} }

func (f *fn) blk(prefix string) *ir.Block {
	f.labels++
	return f.NewBlock(fmt.Sprintf("%s_%d", prefix, f.labels))
}

// For emits `for i := 0; i < bound; i++ { body(i) }`.
func (f *fn) For(bound ir.Reg, body func(i ir.Reg)) {
	i := f.C(0)
	head := f.blk("for")
	bodyB := f.blk("body")
	done := f.blk("done")
	f.Br(head)
	f.SetBlock(head)
	c := f.Cmp(ir.CmpLT, i, bound)
	f.CondBr(c, bodyB, done)
	f.SetBlock(bodyB)
	body(i)
	f.MovTo(i, f.AddI(i, 1))
	f.Br(head)
	f.SetBlock(done)
}

// ForI is For with a constant bound.
func (f *fn) ForI(bound int64, body func(i ir.Reg)) { f.For(f.C(bound), body) }

// DoFor emits a rotated (do-while) counted loop: the body always executes at
// least once, as a compiler's loop rotation would produce for a loop whose
// bound is known positive. The rotation matters to the static classifier:
// a defining store inside a DoFor provably executes on every path, so the
// must-stored dataflow can prove initialization (e.g. labyrinth's
// grid_copy).
func (f *fn) DoFor(bound ir.Reg, body func(i ir.Reg)) {
	i := f.C(0)
	bodyB := f.blk("dobody")
	done := f.blk("dodone")
	f.Br(bodyB)
	f.SetBlock(bodyB)
	body(i)
	f.MovTo(i, f.AddI(i, 1))
	c := f.Cmp(ir.CmpLT, i, bound)
	f.CondBr(c, bodyB, done)
	f.SetBlock(done)
}

// If emits `if cond != 0 { then() } else { els() }`; els may be nil.
func (f *fn) If(cond ir.Reg, then func(), els func()) {
	thenB := f.blk("then")
	var elsB *ir.Block
	done := f.blk("endif")
	if els != nil {
		elsB = f.blk("else")
		f.CondBr(cond, thenB, elsB)
	} else {
		f.CondBr(cond, thenB, done)
	}
	f.SetBlock(thenB)
	then()
	f.Br(done)
	if els != nil {
		f.SetBlock(elsB)
		els()
		f.Br(done)
	}
	f.SetBlock(done)
}

// While emits `for cond() != 0 { body() }`; cond is re-evaluated each
// iteration at the loop head.
func (f *fn) While(cond func() ir.Reg, body func()) {
	head := f.blk("while")
	bodyB := f.blk("wbody")
	done := f.blk("wdone")
	f.Br(head)
	f.SetBlock(head)
	c := cond()
	f.CondBr(c, bodyB, done)
	f.SetBlock(bodyB)
	body()
	f.Br(head)
	f.SetBlock(done)
}

// Idx computes base + i*stride (bytes).
func (f *fn) Idx(base, i ir.Reg, stride int64) ir.Reg {
	return f.Add(base, f.MulI(i, stride))
}

// LoadIdx loads word base[i] with the given byte stride.
func (f *fn) LoadIdx(base, i ir.Reg, stride int64) ir.Reg {
	return f.Load(f.Idx(base, i, stride), 0)
}

// StoreIdx stores word base[i] = v with the given byte stride.
func (f *fn) StoreIdx(base, i ir.Reg, stride int64, v ir.Reg) {
	f.Store(f.Idx(base, i, stride), 0, v)
}

// Hash emits a cheap integer mix of v modulo bound.
func (f *fn) Hash(v ir.Reg, bound int64) ir.Reg {
	x := f.Mul(v, f.C(0x9E3779B1))
	x = f.Bin(ir.BinShr, x, f.C(7))
	x = f.Xor(x, v)
	return f.Mod(x, f.C(bound))
}

// buildMain emits the conventional main: optional setup, then one parallel
// region of `threads` workers, then optional teardown.
func buildMain(b *ir.Builder, threads int64, setup func(m *fn), workerArgs ...ir.Reg) {
	mfb := b.Function("main", 0)
	m := newFn(mfb)
	if setup != nil {
		setup(m)
	}
	n := m.C(threads)
	m.Parallel(n, "worker", workerArgs...)
	m.RetVoid()
}
