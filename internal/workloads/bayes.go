package workloads

import "hintm/internal/ir"

// bayes: Bayesian network structure learning. Each transaction scores a
// candidate edge by querying the AD-tree (a long random-read walk over a
// large, practically read-only structure), accumulates counts in a small
// stack scratch, and updates the learned network.
//
// Paper-relevant properties:
//   - very large readsets from AD-tree queries: heavy capacity aborts at
//     baseline;
//   - the AD-tree is statically written-in-region (a conditional refresh
//     path aliases it), so compile-time classification catches only the
//     small scratch (~2% of accesses, Fig. 5) while dynamic classification
//     marks the AD-tree's (shared,ro) pages safe and removes most capacity
//     aborts;
//   - the scratch's statically safe *writes* also matter under P8S, whose
//     capacity is writeset-bound (§VI-D1).
func init() {
	register(&Spec{
		Name:           "bayes",
		DefaultThreads: 8,
		Description:    "structure learning; AD-tree read walks, small static scratch",
		Build:          buildBayes,
	})
}

func buildBayes(threads int, scale Scale) *ir.Module {
	adWords := scale.pick(8192, 16384, 65536)
	queryLo := scale.pick(40, 40, 80)    // min blocks read per score
	querySpan := scale.pick(60, 80, 160) // extra random blocks
	scoresPerThread := scale.pick(4, 32, 40)
	netNodes := int64(64)
	scratchBlocks := int64(4)

	b := ir.NewBuilder("bayes")
	b.GlobalPageAligned("adtree", adWords)
	b.GlobalPageAligned("network", netNodes*8) // 1 block per node
	b.Global("refreshReq", 1)

	w := newFn(b.ThreadBody("worker", 1))
	ad := w.GlobalAddr("adtree")
	net := w.GlobalAddr("network")
	refresh := w.GlobalAddr("refreshReq")
	adBlocksReg := w.C(adWords / 8)

	scratch := w.Alloca(scratchBlocks * 8)

	w.ForI(scoresPerThread, func(s ir.Reg) {
		node := w.RandI(netNodes)
		w.TxBegin()
		// AD-tree query: long strided-random read walk accumulating in
		// registers.
		queryBlocks := w.Add(w.C(queryLo), w.RandI(querySpan))
		cur := w.Mov(w.Rand(adBlocksReg))
		acc := w.Mov(w.C(0))
		w.For(queryBlocks, func(i ir.Reg) {
			v := w.LoadIdx(ad, cur, 64)
			w.MovTo(acc, w.Add(acc, v))
			w.MovTo(cur, w.Mod(w.Add(w.Mul(cur, w.C(69069)), w.C(1)), adBlocksReg))
		})
		// Log partial counts into the stack scratch: the small population of
		// statically safe (initializing) writes the paper reports for bayes.
		w.DoFor(w.C(scratchBlocks), func(i ir.Reg) {
			w.StoreIdx(scratch, w.MulI(i, 8), 8, w.Add(acc, i))
		})
		// Conditional AD-tree refresh: (essentially) never fires, but makes
		// the AD-tree statically written-in-region.
		req := w.Load(refresh, 0)
		_ = req
		needed := w.Cmp(ir.CmpEQ, w.RandI(48), w.C(0))
		w.If(needed, func() {
			w.StoreIdx(ad, w.C(0), 8, w.C(0))
		}, nil)
		// Fold the score into the network.
		old := w.LoadIdx(net, node, 64)
		w.StoreIdx(net, node, 64, w.Add(old, acc))
		w.TxEnd()
	})
	w.RetVoid()

	buildMain(b, int64(threads), func(m *fn) {
		ad := m.GlobalAddr("adtree")
		m.ForI(adWords, func(i ir.Reg) {
			m.StoreIdx(ad, i, 8, m.RandI(256))
		})
	})
	return b.M
}
