package workloads

import "hintm/internal/ir"

// vacation: travel reservation system. Each transaction queries a batch of
// random records across the car/flight/room tables, records candidate
// offers in a thread-private scratch list, reserves the cheapest candidates
// (record updates), and appends to the customer's reservation list.
//
// Paper-relevant properties:
//   - medium read-heavy transactions; a small tail exceeds P8's 64 entries
//     (Fig. 6d: ~2% of TXs over capacity, 56% below InfCap);
//   - the scratch list is stack-allocated and statically provable — few
//     accesses (~2-3%) but on unique cache blocks, so HinTM-st removes
//     whole tracking entries and recovers about half the capacity aborts;
//   - the tables are updated in the region, so most pages become
//     (shared,rw): dynamic classification helps less and page-mode
//     transitions are the costliest of the suite (Fig. 4b's outlier).
func init() {
	register(&Spec{
		Name:           "vacation",
		DefaultThreads: 8,
		Description:    "travel reservations; read-heavy medium TXs, RW tables",
		Build:          buildVacation,
	})
}

const vacRecStride = 64 // one cache block per record

func buildVacation(threads int, scale Scale) *ir.Module {
	records := scale.pick(512, 2048, 8192) // per table
	txPerThread := scale.pick(8, 320, 384)
	// Most transactions are short; a minority run long multi-resource
	// queries whose footprint exceeds P8 (the paper's ~2% over-capacity
	// tail, Fig. 6d). Long-query probability in percent:
	longPct := scale.pick(10, 8, 30)
	longSpan := scale.pick(24, 24, 160)

	b := ir.NewBuilder("vacation")
	// Three resource tables + customers; one block per record.
	b.GlobalPageAligned("cars", records*vacRecStride/8)
	b.GlobalPageAligned("flights", records*vacRecStride/8)
	b.GlobalPageAligned("rooms", records*vacRecStride/8)
	b.GlobalPageAligned("customers", records*vacRecStride/8)

	w := newFn(b.ThreadBody("worker", 1))
	cars := w.GlobalAddr("cars")
	flights := w.GlobalAddr("flights")
	rooms := w.GlobalAddr("rooms")
	customers := w.GlobalAddr("customers")
	recReg := w.C(records)

	// Thread-private scratch: one candidate per block so each safe access
	// saves a whole tracking entry (the paper's "unique cache blocks").
	scratch := w.Alloca(8 * 8) // 8 blocks

	w.ForI(txPerThread, func(txi ir.Reg) {
		nq := w.Add(w.C(16), w.RandI(16)) // short query batch: fits P8
		long := w.Cmp(ir.CmpLT, w.RandI(100), w.C(longPct))
		w.If(long, func() {
			w.MovTo(nq, w.Add(w.C(56), w.RandI(longSpan)))
		}, nil)
		cust := w.Rand(recReg)

		w.TxBegin()
		// Define the candidate list first: one store per block satisfies the
		// classifier's object-granular initialization check.
		w.DoFor(w.C(8), func(i ir.Reg) {
			w.StoreIdx(scratch, w.MulI(i, 8), 8, w.C(0))
		})
		best := w.Mov(w.C(1 << 30))
		bestIdx := w.Mov(w.C(0))
		nSaved := w.Mov(w.C(0))
		w.For(nq, func(q ir.Reg) {
			r := w.Rand(recReg)
			table := cars
			sel := w.Mod(q, w.C(3))
			isF := w.Cmp(ir.CmpEQ, sel, w.C(1))
			isR := w.Cmp(ir.CmpEQ, sel, w.C(2))
			tReg := w.Mov(table)
			w.If(isF, func() { w.MovTo(tReg, flights) }, nil)
			w.If(isR, func() { w.MovTo(tReg, rooms) }, nil)
			// Reservation records span four words (price, free count, total,
			// special rate) within one block.
			recAddr := w.Idx(tReg, r, vacRecStride)
			price := w.Load(recAddr, 0)
			price = w.Add(price, w.Load(recAddr, 8))
			price = w.Add(price, w.Load(recAddr, 16))
			price = w.Add(price, w.Load(recAddr, 24))
			// Track the cheapest offer; improving candidates land in the
			// private scratch (initializing stores, one block each).
			cheaper := w.Cmp(ir.CmpLT, price, best)
			w.If(cheaper, func() {
				w.MovTo(best, price)
				w.MovTo(bestIdx, r)
				room := w.Cmp(ir.CmpLT, nSaved, w.C(8))
				w.If(room, func() {
					w.StoreIdx(scratch, w.MulI(nSaved, 8), 8, price)
					w.MovTo(nSaved, w.AddI(nSaved, 1))
				}, nil)
			}, nil)
		})
		// Re-read the saved candidates (safe loads) to pick quality.
		sum := w.Mov(w.C(0))
		w.For(nSaved, func(i ir.Reg) {
			w.MovTo(sum, w.Add(sum, w.LoadIdx(scratch, w.MulI(i, 8), 8)))
		})
		// Reserve: decrement availability on the cheapest record and bill
		// the customer.
		avail := w.LoadIdx(cars, bestIdx, vacRecStride)
		w.StoreIdx(cars, bestIdx, vacRecStride, w.AddI(avail, 1))
		bill := w.LoadIdx(customers, cust, vacRecStride)
		w.StoreIdx(customers, cust, vacRecStride, w.Add(bill, best))
		w.TxEnd()
	})
	w.RetVoid()

	buildMain(b, int64(threads), func(m *fn) {
		for _, tbl := range []string{"cars", "flights", "rooms", "customers"} {
			base := m.GlobalAddr(tbl)
			m.ForI(records, func(i ir.Reg) {
				m.StoreIdx(base, i, vacRecStride, m.AddI(m.RandI(900), 100))
			})
		}
	})
	return b.M
}
