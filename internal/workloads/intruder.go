package workloads

import "hintm/internal/ir"

// intruder: network intrusion detection. Threads transactionally pop packet
// fragments from a shared queue (a hot head counter), decode them into a
// thread-private buffer, and assemble flows in a shared map; completed flows
// are scanned by the detector.
//
// Paper-relevant properties:
//   - conflict-dominated small pop transactions on the queue head;
//   - medium assembly transactions whose private decode buffer is
//     *statically unprovable* (its pointer conditionally escapes to a
//     debug-trace global), so only dynamic classification helps — the
//     paper's static pass finds no safe accesses for intruder.
func init() {
	register(&Spec{
		Name:           "intruder",
		DefaultThreads: 8,
		Description:    "packet reassembly; hot queue conflicts, dyn-only private buffers",
		Build:          buildIntruder,
	})
}

func buildIntruder(threads int, scale Scale) *ir.Module {
	packets := scale.pick(64, 2048, 4096)
	flows := scale.pick(32, 128, 512)
	flowBlocks := int64(8)                  // flow record: 8 blocks of fragment data
	decodeBlocks := int64(16)               // decode buffer capacity
	historyBlocks := scale.pick(52, 42, 56) // detector's signature history ring

	b := ir.NewBuilder("intruder")
	b.Global("qhead", 1)
	b.GlobalPageAligned("packets", packets*2) // [flow, frag] per packet
	b.GlobalPageAligned("flowtab", flows*flowBlocks*8)
	b.Global("traceSlot", 1)
	b.Global("alarms", 1)

	w := newFn(b.ThreadBody("worker", 1))
	qhead := w.GlobalAddr("qhead")
	pkts := w.GlobalAddr("packets")
	flowtab := w.GlobalAddr("flowtab")
	trace := w.GlobalAddr("traceSlot")
	alarms := w.GlobalAddr("alarms")

	// Thread-private decode buffer and detector history ring. The detector
	// matches each packet against signatures accumulated from previously
	// decoded traffic; the ring is written between transactions and only
	// read inside them. The conditional publication below makes both
	// statically shared-reachable (never executed in practice), so the
	// compiler cannot mark them — only the page classifier can.
	buf := w.MallocI(decodeBlocks * 64)
	history := w.MallocI(historyBlocks * 64)
	maybe := w.Cmp(ir.CmpLT, w.RandI(1000000), w.C(0)) // never true
	w.If(maybe, func() {
		w.Store(trace, 0, buf)
		w.Store(trace, 0, history)
	}, nil)
	// Warm the history ring so early transactions scan real data.
	w.ForI(historyBlocks, func(i ir.Reg) {
		w.StoreIdx(history, w.MulI(i, 8), 8, w.Add(w.Param(0), i))
	})

	running := w.Mov(w.C(1))
	w.While(func() ir.Reg { return running }, func() {
		// TX 1: pop a packet (hot counter: the conflict source).
		idx := w.Mov(w.C(0))
		w.TxBegin()
		h := w.Load(qhead, 0)
		exhausted := w.Cmp(ir.CmpGE, h, w.C(packets))
		w.If(exhausted, func() {
			w.MovTo(running, w.C(0))
		}, func() {
			w.Store(qhead, 0, w.AddI(h, 1))
			w.MovTo(idx, h)
		})
		w.TxEnd()

		alive := w.Cmp(ir.CmpEQ, running, w.C(1))
		w.If(alive, func() {
			flow := w.LoadIdx(pkts, w.MulI(idx, 2), 8)
			frag := w.LoadIdx(pkts, w.AddI(w.MulI(idx, 2), 1), 8)

			// TX 2: decode into the private buffer, merge into the flow,
			// match against the private signature history (the footprint-
			// dominating read walk).
			w.TxBegin()
			// Fragment sizes vary: the decoded footprint straddles P8's
			// capacity so only part of the TX population overflows.
			dn := w.AddI(w.RandI(decodeBlocks-4), 4)
			w.For(dn, func(i ir.Reg) {
				v := w.Xor(w.Add(flow, i), frag)
				w.StoreIdx(buf, w.MulI(i, 8), 8, v)
			})
			fbase := w.Idx(flowtab, w.Mul(flow, w.C(flowBlocks*8)), 8)
			w.ForI(flowBlocks, func(i ir.Reg) {
				d := w.LoadIdx(buf, w.MulI(w.Mod(i, dn), 8), 8)
				old := w.LoadIdx(fbase, w.MulI(i, 8), 8)
				w.StoreIdx(fbase, w.MulI(i, 8), 8, w.Xor(old, d))
			})
			// Detector: compare decoded output against the history ring.
			score := w.Mov(w.C(0))
			w.ForI(historyBlocks, func(i ir.Reg) {
				h := w.LoadIdx(history, w.MulI(i, 8), 8)
				d := w.LoadIdx(buf, w.MulI(w.Mod(i, dn), 8), 8)
				same := w.Cmp(ir.CmpEQ, w.Mod(h, w.C(251)), w.Mod(d, w.C(251)))
				w.MovTo(score, w.Add(score, same))
			})
			hit := w.Cmp(ir.CmpGT, score, w.C(int64(historyBlocks/2)))
			w.If(hit, func() {
				a := w.Load(alarms, 0)
				w.Store(alarms, 0, w.AddI(a, 1))
			}, nil)
			w.TxEnd()

			// Outside the TX: fold this packet's signature into the history
			// ring for future detection (private writes on private pages).
			slot := w.Mod(idx, w.C(historyBlocks))
			sig := w.LoadIdx(buf, 0, 8)
			w.StoreIdx(history, w.MulI(slot, 8), 8, sig)
		}, nil)
	})
	w.FreeI(buf, decodeBlocks*64)
	w.FreeI(history, historyBlocks*64)
	w.RetVoid()

	buildMain(b, int64(threads), func(m *fn) {
		p := m.GlobalAddr("packets")
		m.ForI(packets, func(i ir.Reg) {
			m.StoreIdx(p, m.MulI(i, 2), 8, m.RandI(flows))
			m.StoreIdx(p, m.AddI(m.MulI(i, 2), 1), 8, m.RandI(16))
		})
	})
	return b.M
}
