package workloads

import (
	"context"
	"testing"

	"hintm/internal/classify"
	"hintm/internal/fault"
	"hintm/internal/sim"
)

// runInvariant builds, classifies, and runs one checked workload under cfg,
// returning the invariant value and the run result.
func runInvariant(t *testing.T, c invariantCheck, cfg sim.Config) (int64, *sim.Result) {
	t.Helper()
	spec, err := ByName(c.workload)
	if err != nil {
		t.Fatal(err)
	}
	mod := spec.Build(spec.DefaultThreads, Small)
	if _, err := classify.Run(mod); err != nil {
		t.Fatal(err)
	}
	m, err := sim.New(cfg, mod)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: %v", c.workload, err)
	}
	return c.value(m), res
}

// The fault-injection extension of the invariants matrix: injected spurious
// aborts, page-mode storms, and delayed invalidations perturb timing and
// the abort/retry/fallback paths, but every schedule-independent output must
// still match the fault-free run — and each campaign must actually fire.
func TestSemanticInvariantsUnderFaultCampaigns(t *testing.T) {
	campaigns := []struct {
		name string
		plan fault.Plan
		// fired checks the aggregated fault stats prove the campaign injected
		// something somewhere in the matrix.
		fired func(s fault.Stats) bool
	}{
		{
			name:  "spurious",
			plan:  fault.Plan{SpuriousProb: 0.05},
			fired: func(s fault.Stats) bool { return s.SpuriousAborts > 0 },
		},
		{
			name:  "storm",
			plan:  fault.Plan{StormProb: 0.01},
			fired: func(s fault.Stats) bool { return s.StormsForced > 0 },
		},
		{
			name:  "inval-delay",
			plan:  fault.Plan{InvalDelaySteps: 100, InvalBurst: 4},
			fired: func(s fault.Stats) bool { return s.InvalsHeld > 0 },
		},
		{
			name: "combined",
			plan: fault.Plan{SpuriousProb: 0.02, StormProb: 0.005,
				InvalDelaySteps: 50, InvalBurst: 8},
			fired: func(s fault.Stats) bool {
				return s.SpuriousAborts > 0 && s.InvalsHeld > 0
			},
		},
	}

	// HinTM-full on P8: the configuration where every fault class is live
	// (storms need dynamic classification).
	base := sim.DefaultConfig()
	base.Hints = sim.HintFull

	for _, camp := range campaigns {
		camp := camp
		t.Run(camp.name, func(t *testing.T) {
			var total fault.Stats
			for _, c := range invariantChecks {
				want, _ := runInvariant(t, c, base)
				if want == 0 {
					t.Fatalf("%s: fault-free invariant value is zero — workload broken", c.workload)
				}
				cfg := base
				cfg.Faults = camp.plan
				got, res := runInvariant(t, c, cfg)
				if got != want {
					t.Errorf("%s: %s = %d under %s campaign, want %d",
						c.workload, c.describe, got, camp.name, want)
				}
				total.SpuriousAborts += res.Faults.SpuriousAborts
				total.StormsForced += res.Faults.StormsForced
				total.InvalsHeld += res.Faults.InvalsHeld
				total.InvalBursts += res.Faults.InvalBursts
			}
			if !camp.fired(total) {
				t.Errorf("%s campaign was vacuous across the whole matrix: %+v",
					camp.name, total)
			}
		})
	}
}

// Forcing every workload through the fallback lock: a 4-entry tracker with
// zero retries makes nearly every transaction overflow or conflict straight
// into the fallback path, which must still produce correct outputs.
func TestAllWorkloadsThroughFallbackPath(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.P8Entries = 4
	cfg.CapacityRetries = 0
	cfg.MaxConflictRetries = 0

	byName := make(map[string]invariantCheck)
	for _, c := range invariantChecks {
		byName[c.workload] = c
	}

	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			mod := spec.Build(spec.DefaultThreads, Small)
			if _, err := classify.Run(mod); err != nil {
				t.Fatal(err)
			}
			m, err := sim.New(cfg, mod)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.FallbackCommits == 0 {
				t.Errorf("4-entry tracker never forced %s through the fallback lock: %v",
					spec.Name, res)
			}
			// For the workloads with a checked invariant, the fallback-heavy
			// run must still produce the canonical value.
			if c, ok := byName[spec.Name]; ok {
				want, _ := runInvariant(t, c, sim.DefaultConfig())
				if got := c.value(m); got != want {
					t.Errorf("%s: %s = %d via fallback path, want %d",
						spec.Name, c.describe, got, want)
				}
			}
		})
	}
}
