package workloads

import (
	"context"
	"testing"

	"hintm/internal/classify"
	"hintm/internal/htm"
	"hintm/internal/sim"
)

// invariantCheck names one schedule-independent output of a workload: a
// quantity that depends only on per-thread PRNG streams and TX atomicity,
// not on interleaving, so it must be bit-identical across every HTM
// baseline, hint mode — and fault campaign (fault_test.go).
type invariantCheck struct {
	workload string
	describe string
	value    func(m *sim.Machine) int64
}

var invariantChecks = []invariantCheck{
	{
		workload: "kmeans",
		describe: "sum of cluster counts == points processed",
		value: func(m *sim.Machine) int64 {
			var sum int64
			for c := int64(0); c < kmK; c++ {
				sum += m.ReadGlobal("centers", c*16)
			}
			return sum
		},
	},
	{
		workload: "tpcc-p",
		describe: "warehouse YTD == initial + all payment amounts",
		value: func(m *sim.Machine) int64 {
			return m.ReadGlobal("warehouse", 0)
		},
	},
	{
		workload: "intruder",
		describe: "queue head == packet count (all packets consumed once)",
		value: func(m *sim.Machine) int64 {
			return m.ReadGlobal("qhead", 0)
		},
	},
	{
		workload: "yada",
		describe: "refined counter == threads * refinements",
		value: func(m *sim.Machine) int64 {
			return m.ReadGlobal("refined", 0)
		},
	},
}

// Safety hints must never change program semantics: a workload's
// configuration-independent outputs have to be identical across every HTM
// baseline and hint mode.
func TestSemanticInvariantsAcrossConfigs(t *testing.T) {
	checks := invariantChecks

	configs := []struct {
		name       string
		kind       sim.HTMKind
		hints      sim.HintMode
		versioning htm.Versioning
	}{
		{"P8/baseline", sim.HTMP8, sim.HintNone, htm.VersionEager},
		{"P8/st", sim.HTMP8, sim.HintStatic, htm.VersionEager},
		{"P8/dyn", sim.HTMP8, sim.HintDynamic, htm.VersionEager},
		{"P8/full", sim.HTMP8, sim.HintFull, htm.VersionEager},
		{"P8/lazy", sim.HTMP8, sim.HintNone, htm.VersionLazy},
		{"P8/lazy+full", sim.HTMP8, sim.HintFull, htm.VersionLazy},
		{"P8S/full", sim.HTMP8S, sim.HintFull, htm.VersionEager},
		{"L1TM/full", sim.HTML1TM, sim.HintFull, htm.VersionEager},
		{"InfCap/baseline", sim.HTMInfCap, sim.HintNone, htm.VersionEager},
	}

	for _, c := range checks {
		c := c
		t.Run(c.workload, func(t *testing.T) {
			spec, err := ByName(c.workload)
			if err != nil {
				t.Fatal(err)
			}
			mod := spec.Build(spec.DefaultThreads, Small)
			if _, err := classify.Run(mod); err != nil {
				t.Fatal(err)
			}
			var want int64
			for i, cfgDesc := range configs {
				cfg := sim.DefaultConfig()
				cfg.HTM = cfgDesc.kind
				cfg.Hints = cfgDesc.hints
				cfg.Versioning = cfgDesc.versioning
				m, err := sim.New(cfg, mod)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(context.Background()); err != nil {
					t.Fatalf("%s: %v", cfgDesc.name, err)
				}
				got := c.value(m)
				if i == 0 {
					want = got
					if want == 0 {
						t.Fatalf("%s: invariant value is zero — workload broken", c.describe)
					}
					continue
				}
				if got != want {
					t.Errorf("%s: %s = %d under %s, want %d (baseline)",
						c.workload, c.describe, got, cfgDesc.name, want)
				}
			}
		})
	}
}
