package workloads

import "hintm/internal/ir"

// genome: gene sequencing — segment deduplication into a shared hash table.
// Each transaction scans a long segment of the gene string, hashes it, and
// inserts it into an open-addressed table.
//
// Paper-relevant properties (4 threads, like the paper):
//   - the segment scan reads many gene blocks, overflowing P8's buffer at
//     baseline;
//   - the gene string is *practically* read-only during the region, but a
//     (rare) repair path may write it, so static classification proves
//     nothing (the paper: "no safe accesses for genome") while dynamic
//     classification marks the gene's (shared,ro) pages safe and removes
//     most capacity aborts;
//   - hash-table probes/inserts stay unsafe and provide conflicts.
func init() {
	register(&Spec{
		Name:           "genome",
		DefaultThreads: 4,
		Description:    "segment dedup; long read-only scans only dynamic classification can prove",
		Build:          buildGenome,
	})
}

func buildGenome(threads int, scale Scale) *ir.Module {
	geneWords := scale.pick(4096, 8192, 32768)
	segLo := scale.pick(320, 320, 800)   // minimum scan length in words
	segSpan := scale.pick(320, 320, 960) // additional random words
	segsPerThread := scale.pick(6, 48, 64)
	buckets := scale.pick(256, 1024, 4096)

	b := ir.NewBuilder("genome")
	b.GlobalPageAligned("gene", geneWords)
	b.GlobalPageAligned("table", buckets*2) // [key, count] per bucket

	w := newFn(b.ThreadBody("worker", 1))
	gene := w.GlobalAddr("gene")
	table := w.GlobalAddr("table")

	w.ForI(segsPerThread, func(s ir.Reg) {
		segWords := w.Add(w.C(segLo), w.RandI(segSpan))
		start := w.RandI(geneWords - segLo - segSpan)
		w.TxBegin()
		// Scan the segment: a long run of gene loads. Dynamically safe
		// (pages stay shared,ro in practice); statically unprovable
		// because of the repair path below.
		h := w.Mov(w.C(0))
		w.For(segWords, func(i ir.Reg) {
			v := w.LoadIdx(gene, w.Add(start, i), 8)
			w.MovTo(h, w.Add(w.Mul(h, w.C(31)), v))
		})
		// Rare repair path: normalize a negative sentinel in place. It
		// (essentially) never fires, but it makes the gene statically
		// written-in-region.
		probeV := w.LoadIdx(gene, start, 8)
		_ = probeV
		broken := w.Cmp(ir.CmpEQ, w.RandI(64), w.C(0))
		w.If(broken, func() {
			w.StoreIdx(gene, start, 8, w.C(0))
		}, nil)
		// Insert into the shared table with linear probing (bounded).
		slot := w.Hash(h, buckets)
		done := w.Mov(w.C(0))
		w.ForI(4, func(p ir.Reg) {
			pending := w.Cmp(ir.CmpEQ, done, w.C(0))
			w.If(pending, func() {
				idx := w.Mod(w.Add(slot, p), w.C(buckets))
				key := w.LoadIdx(table, w.MulI(idx, 2), 8)
				empty := w.Cmp(ir.CmpEQ, key, w.C(0))
				match := w.Cmp(ir.CmpEQ, key, h)
				hit := w.Bin(ir.BinOr, empty, match)
				w.If(hit, func() {
					addr := w.Idx(table, w.MulI(idx, 2), 8)
					w.Store(addr, 0, h)
					cnt := w.Load(addr, 8)
					w.Store(addr, 8, w.AddI(cnt, 1))
					w.MovTo(done, w.C(1))
				}, nil)
			}, nil)
		})
		w.TxEnd()
	})
	w.RetVoid()

	buildMain(b, int64(threads), func(m *fn) {
		g := m.GlobalAddr("gene")
		m.ForI(geneWords, func(i ir.Reg) {
			m.StoreIdx(g, i, 8, m.AddI(m.RandI(3), 1)) // positive bases
		})
	})
	return b.M
}
