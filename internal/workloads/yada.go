package workloads

import "hintm/internal/ir"

// yada: Delaunay mesh refinement. Each transaction walks a cavity of
// triangles around a bad element (a long read walk over the shared mesh),
// collects the cavity into a small scratch list allocated and freed inside
// the transaction, and retriangulates by writing a few mesh records.
//
// Paper-relevant properties (4 threads):
//   - large read-mostly transactions: the cavity walk overflows P8;
//   - mesh pages are written by retriangulation over time, so dynamic
//     classification helps early (pages still shared,ro) and wanes as pages
//     transition — a partial, not total, capacity reduction;
//   - the in-TX scratch (malloc'd and freed inside the TX) is the only
//     statically provable memory, a tiny fraction of accesses on P8 but a
//     meaningful share of the *writeset*, which is what P8S capacity is
//     bound by (the paper's §VI-D1 bayes/yada observation).
func init() {
	register(&Spec{
		Name:           "yada",
		DefaultThreads: 4,
		Description:    "mesh refinement; large read walks, in-TX scratch, partial dyn benefit",
		Build:          buildYada,
	})
}

func buildYada(threads int, scale Scale) *ir.Module {
	triangles := scale.pick(1024, 4096, 16384) // mesh records, 1 block each
	cavityLo := scale.pick(48, 40, 80)         // min blocks read per walk
	cavitySpan := scale.pick(48, 64, 160)      // extra random blocks
	refinements := scale.pick(4, 160, 224)     // TXs per thread
	scratchBlocks := int64(4)
	writeback := int64(4)
	// New triangles are appended into a per-thread tail region (mesh
	// refinement grows the mesh); existing records are only occasionally
	// marked dead in place, so most mesh pages stay read-mostly.
	appendCap := refinements * writeback

	b := ir.NewBuilder("yada")
	b.GlobalPageAligned("mesh", triangles*8) // 1 block (8 words) per triangle
	b.GlobalPageAligned("meshTail", int64(threads)*appendCap*8)
	b.Global("refined", 1)

	w := newFn(b.ThreadBody("worker", 1))
	mesh := w.GlobalAddr("mesh")
	tail := w.GlobalAddr("meshTail")
	refined := w.GlobalAddr("refined")
	triReg := w.C(triangles)

	w.ForI(refinements, func(r ir.Reg) {
		seed := w.Rand(triReg)
		w.TxBegin()
		// In-TX scratch: allocated and freed within the transaction, so
		// Algorithm 1 proves it thread-private and its stores initializing.
		scratch := w.MallocI(scratchBlocks * 64)
		// Cavity walk: pseudo-random chain of mesh reads.
		cavity := w.Add(w.C(cavityLo), w.RandI(cavitySpan))
		cur := w.Mov(seed)
		acc := w.Mov(w.C(0))
		w.For(cavity, func(i ir.Reg) {
			v := w.LoadIdx(mesh, cur, 64)
			w.MovTo(acc, w.Add(acc, v))
			w.MovTo(cur, w.Mod(w.Add(w.Mul(cur, w.C(1103515245)), w.C(12345)), triReg))
		})
		// Record the cavity summary in the in-TX scratch (the tiny population
		// of statically safe writes that matters under writeset-bound P8S).
		w.DoFor(w.C(scratchBlocks), func(i ir.Reg) {
			w.StoreIdx(scratch, w.MulI(i, 8), 8, w.Add(acc, i))
		})
		// Retriangulate: append new triangles to this thread's tail region;
		// occasionally mark one original record dead in place.
		tailBase := w.Add(w.MulI(w.Param(0), appendCap), w.Mul(r, w.C(writeback)))
		w.ForI(writeback, func(i ir.Reg) {
			w.StoreIdx(tail, w.Add(tailBase, i), 64, w.Add(acc, i))
		})
		kill := w.Cmp(ir.CmpEQ, w.RandI(8), w.C(0))
		w.If(kill, func() {
			old := w.LoadIdx(mesh, seed, 64)
			w.StoreIdx(mesh, seed, 64, w.Sub(w.C(0), w.AddI(old, 1)))
		}, nil)
		cnt := w.Load(refined, 0)
		w.Store(refined, 0, w.AddI(cnt, 1))
		w.FreeI(scratch, scratchBlocks*64)
		w.TxEnd()
	})
	w.RetVoid()

	buildMain(b, int64(threads), func(m *fn) {
		mesh := m.GlobalAddr("mesh")
		m.ForI(triangles, func(i ir.Reg) {
			m.StoreIdx(mesh, i, 64, m.AddI(m.RandI(100), 1))
		})
	})
	return b.M
}
