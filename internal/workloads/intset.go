package workloads

import "hintm/internal/ir"

// Integer-set microbenchmarks — the classic TM kernels (sorted linked list,
// open-addressed hash set) used throughout the TM literature to stress
// specific HTM behaviours. They are Extra workloads: not part of the paper's
// evaluation suite, but useful probes of HinTM's limits.
//
//   - intset-ll: a sorted linked list of heap nodes shared by all threads.
//     Every operation pointer-chases half the list inside its transaction:
//     large readsets over genuinely shared, genuinely written memory. This
//     is HinTM's honest worst case — neither classifier can prove anything
//     (the nodes are shared-reachable and their pages turn read-write), so
//     capacity aborts persist with hints enabled. InfCap shows what a truly
//     larger HTM would buy.
//
//   - intset-hash: an open-addressed hash set with short probe sequences:
//     tiny transactions, negligible capacity pressure, conflicts only on
//     bucket collisions. A control workload like kmeans/ssca2.
func init() {
	register(&Spec{
		Name:           "intset-ll",
		DefaultThreads: 8,
		Description:    "sorted linked-list set; pointer-chasing readsets HinTM cannot classify",
		Build:          buildIntsetLL,
		Extra:          true,
	})
	register(&Spec{
		Name:           "intset-hash",
		DefaultThreads: 8,
		Description:    "open-addressed hash set; tiny TXs, control workload",
		Build:          buildIntsetHash,
		Extra:          true,
	})
}

// Node layout (one cache block): [0]=value, [8]=next pointer, [16]=dead flag.
const llNodeSize = 64

func buildIntsetLL(threads int, scale Scale) *ir.Module {
	initial := scale.pick(96, 192, 320) // initial list length (≈ blocks walked/2)
	opsPerThread := scale.pick(6, 24, 40)
	keyspace := initial * 8

	b := ir.NewBuilder("intset-ll")
	b.Global("head", 1) // pointer to first node
	// The initial nodes come from a contiguous arena so main can build the
	// list without malloc bookkeeping; TX-inserted nodes use malloc.
	b.GlobalPageAligned("arena", initial*8)

	w := newFn(b.ThreadBody("worker", 1))
	head := w.GlobalAddr("head")
	keyReg := w.C(keyspace)

	w.ForI(opsPerThread, func(op ir.Reg) {
		target := w.Rand(keyReg)
		insert := w.Cmp(ir.CmpLT, w.RandI(100), w.C(50))

		w.TxBegin()
		// Traverse: prev/cur pointer chase until cur.value >= target.
		prev := w.Mov(w.Load(head, 0))
		cur := w.Mov(w.Load(prev, 8))
		w.While(func() ir.Reg {
			nonNil := w.Cmp(ir.CmpNE, cur, w.C(0))
			stop := w.Mov(w.C(0))
			w.If(nonNil, func() {
				v := w.Load(cur, 0)
				w.MovTo(stop, w.Cmp(ir.CmpLT, v, target))
			}, nil)
			return stop
		}, func() {
			w.MovTo(prev, cur)
			w.MovTo(cur, w.Load(cur, 8))
		})
		w.If(insert, func() {
			node := w.MallocI(llNodeSize)
			w.Store(node, 0, target)
			w.Store(node, 8, cur)
			w.Store(node, 16, w.C(0))
			w.Store(prev, 8, node) // link in (publishes the node)
		}, func() {
			// Logical removal: mark the successor dead if it matches.
			found := w.Mov(w.C(0))
			nonNil := w.Cmp(ir.CmpNE, cur, w.C(0))
			w.If(nonNil, func() {
				v := w.Load(cur, 0)
				w.MovTo(found, w.Cmp(ir.CmpEQ, v, target))
			}, nil)
			w.If(found, func() {
				w.Store(cur, 16, w.C(1))
			}, nil)
		})
		w.TxEnd()
	})
	w.RetVoid()

	buildMain(b, int64(threads), func(m *fn) {
		// Build the initial sorted list: arena[i] holds value i*8, linked in
		// order; head points at a sentinel (arena[0] with value -1).
		arena := m.GlobalAddr("arena")
		hd := m.GlobalAddr("head")
		m.Store(hd, 0, arena)
		m.Store(arena, 0, m.C(-1))
		m.ForI(initial-1, func(i ir.Reg) {
			node := m.Idx(arena, i, llNodeSize)
			next := m.Idx(arena, m.AddI(i, 1), llNodeSize)
			m.Store(node, 8, next)
			m.Store(next, 0, m.MulI(m.AddI(i, 1), 8))
			m.Store(next, 8, m.C(0))
			m.Store(next, 16, m.C(0))
		})
	})
	return b.M
}

func buildIntsetHash(threads int, scale Scale) *ir.Module {
	buckets := scale.pick(512, 2048, 8192)
	opsPerThread := scale.pick(32, 256, 512)

	b := ir.NewBuilder("intset-hash")
	b.GlobalPageAligned("buckets", buckets) // one word per bucket

	w := newFn(b.ThreadBody("worker", 1))
	tbl := w.GlobalAddr("buckets")

	w.ForI(opsPerThread, func(op ir.Reg) {
		key := w.AddI(w.RandI(1<<20), 1)
		slot := w.Hash(key, buckets)
		w.TxBegin()
		inserted := w.Mov(w.C(0))
		w.ForI(4, func(p ir.Reg) { // bounded linear probe
			pending := w.Cmp(ir.CmpEQ, inserted, w.C(0))
			w.If(pending, func() {
				idx := w.Mod(w.Add(slot, p), w.C(buckets))
				v := w.LoadIdx(tbl, idx, 8)
				empty := w.Cmp(ir.CmpEQ, v, w.C(0))
				match := w.Cmp(ir.CmpEQ, v, key)
				hit := w.Bin(ir.BinOr, empty, match)
				w.If(hit, func() {
					w.StoreIdx(tbl, idx, 8, key)
					w.MovTo(inserted, w.C(1))
				}, nil)
			}, nil)
		})
		w.TxEnd()
	})
	w.RetVoid()

	buildMain(b, int64(threads), nil)
	return b.M
}
