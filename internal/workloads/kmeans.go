package workloads

import "hintm/internal/ir"

// kmeans: partitioned clustering. Each thread assigns its slice of points to
// the nearest center (non-transactional distance computation over a stale
// snapshot, as in STAMP) and then transactionally folds the point into the
// chosen center's accumulator.
//
// Paper-relevant property: tiny transactions (two or three cache blocks) —
// kmeans never exceeds even P8's capacity and is unaffected by HinTM
// (Fig. 1, Fig. 4).
func init() {
	register(&Spec{
		Name:           "kmeans",
		DefaultThreads: 8,
		Description:    "partitioned clustering; tiny TXs, no capacity pressure",
		Build:          buildKmeans,
	})
}

const (
	kmDim = 8 // words per point (one cache block)
	kmK   = 32
)

func buildKmeans(threads int, scale Scale) *ir.Module {
	points := scale.pick(256, 8192, 16384)
	b := ir.NewBuilder("kmeans")
	b.GlobalPageAligned("points", points*kmDim)
	// centers: per cluster [count, sum0..sum7, padding to 16 words].
	b.GlobalPageAligned("centers", kmK*16)

	buildKmWorker(b, points, int64(threads))

	buildMain(b, int64(threads), func(m *fn) {
		pts := m.GlobalAddr("points")
		m.ForI(points*kmDim, func(i ir.Reg) {
			m.StoreIdx(pts, i, 8, m.RandI(1024))
		})
		ctr := m.GlobalAddr("centers")
		m.ForI(kmK*16, func(i ir.Reg) {
			m.StoreIdx(ctr, i, 8, m.C(0))
		})
	})
	return b.M
}

func buildKmWorker(b *ir.Builder, points, threads int64) {
	w := newFn(b.ThreadBody("worker", 1))
	tid := w.Param(0)
	chunk := points / threads
	pts := w.GlobalAddr("points")
	ctr := w.GlobalAddr("centers")
	base := w.MulI(tid, chunk)

	w.ForI(chunk, func(i ir.Reg) {
		pi := w.Add(base, i)
		paddr := w.Idx(pts, pi, kmDim*8)

		// Pick the nearest center non-transactionally (stale reads are
		// tolerated, as in the original benchmark's assignment phase).
		best := w.Mov(w.C(0))
		bestDist := w.Mov(w.C(1 << 40))
		w.ForI(kmK, func(c ir.Reg) {
			caddr := w.Idx(ctr, c, 16*8)
			dist := w.Mov(w.C(0))
			for d := int64(0); d < kmDim; d++ {
				pv := w.Load(paddr, d*8)
				cv := w.Load(caddr, (1+d)*8)
				diff := w.Sub(pv, cv)
				w.MovTo(dist, w.Add(dist, w.Mul(diff, diff)))
			}
			closer := w.Cmp(ir.CmpLT, dist, bestDist)
			w.If(closer, func() {
				w.MovTo(bestDist, dist)
				w.MovTo(best, c)
			}, nil)
		})

		// Transactionally fold the point into the chosen accumulator.
		w.TxBegin()
		caddr := w.Idx(ctr, best, 16*8)
		cnt := w.Load(caddr, 0)
		w.Store(caddr, 0, w.AddI(cnt, 1))
		for d := int64(0); d < kmDim; d++ {
			pv := w.Load(paddr, d*8)
			sum := w.Load(caddr, (1+d)*8)
			w.Store(caddr, (1+d)*8, w.Add(sum, pv))
		}
		w.TxEnd()
	})
	w.RetVoid()
}
