package workloads

import "hintm/internal/ir"

// labyrinth: maze routing (Lee's algorithm), structured like STAMP's
// router: each attempt snapshots the shared grid into a thread-private
// scratch grid and runs the distance expansion outside the transaction
// (stale snapshots are tolerated); the transaction then selects the route
// by sweeping the private grid and writes the path back to the shared grid
// with per-cell validation reads.
//
// Paper-relevant properties:
//   - the private grid is heap-allocated per thread and freed at thread
//     end, so Algorithm 1 + escape analysis prove it thread-private; the
//     in-TX route-selection sweep over it dominates the transaction's
//     accesses (the paper's ~95%-safe extreme, Fig. 5), and the helper that
//     performs it is specialized by function replication (Listing 2);
//   - baseline transactions track the whole private sweep and overflow
//     P8's 64 entries almost always (Fig. 1's worst case, 9.1× InfCap
//     headroom); with hints only the ~path-sized validated write-back
//     remains and the TX fits — HinTM-st alone recovers most of it
//     (Fig. 4's 2.98×);
//   - conflicts arise only from overlapping paths, so hinted runs scale.
func init() {
	register(&Spec{
		Name:           "labyrinth",
		DefaultThreads: 8,
		Description:    "maze routing; private grid sweeps in-TX, validated path writeback",
		Build:          buildLabyrinth,
	})
}

func buildLabyrinth(threads int, scale Scale) *ir.Module {
	gridWords := scale.pick(448, 420, 1536) // 56/53/192 cache blocks
	pathsPerThread := scale.pick(2, 16, 20)
	pathLen := scale.pick(12, 16, 24)     // path cells, one cache block apart
	routeBlocks := scale.pick(32, 40, 56) // private route buffer (blocks)
	sweeps := int64(3)

	b := ir.NewBuilder("labyrinth")
	b.GlobalPageAligned("grid", gridWords)

	// copyGrid(dst, src, n): stale snapshot of the shared grid (outside TX).
	cg := newFn(b.Function("copyGrid", 3))
	cg.DoFor(cg.Param(2), func(i ir.Reg) {
		v := cg.LoadIdx(cg.Param(1), i, 8)
		cg.StoreIdx(cg.Param(0), i, 8, v)
	})
	cg.RetVoid()

	// expand(g, n, seed): relaxation sweeps over the private grid (outside TX).
	ex := newFn(b.Function("expand", 3))
	ex.DoFor(ex.Param(1), func(i ir.Reg) {
		v := ex.LoadIdx(ex.Param(0), i, 8)
		nbIdx := ex.Mod(ex.Add(i, ex.Param(2)), ex.Param(1))
		nb := ex.LoadIdx(ex.Param(0), nbIdx, 8)
		better := ex.Cmp(ir.CmpLT, ex.AddI(nb, 1), v)
		ex.If(better, func() {
			ex.StoreIdx(ex.Param(0), i, 8, ex.AddI(nb, 1))
		}, nil)
	})
	ex.RetVoid()

	// selectRoute(g, route, n, seed): in-TX route selection — clears the
	// private route buffer (initializing, statically safe stores: the
	// writeset P8S-style HTMs are bound by), then runs `sweeps` full read
	// sweeps over the private grid recording corridor candidates, and
	// finally marks a handful of chosen grid cells (load-before-store, so
	// those stay tracked). Called inside the transaction with
	// thread-private arguments: the replication target (Listing 2).
	sr := newFn(b.Function("selectRoute", 4))
	{
		sr.DoFor(sr.C(routeBlocks), func(i ir.Reg) {
			sr.StoreIdx(sr.Param(1), sr.MulI(i, 8), 8, sr.C(0))
		})
		bestv := sr.Mov(sr.C(1 << 30))
		besti := sr.Mov(sr.C(0))
		for s := int64(0); s < sweeps; s++ {
			sr.For(sr.Param(2), func(i ir.Reg) {
				v := sr.LoadIdx(sr.Param(0), i, 8)
				better := sr.Cmp(ir.CmpLT, v, bestv)
				sr.If(better, func() {
					sr.MovTo(bestv, v)
					sr.MovTo(besti, i)
					slot := sr.Mod(i, sr.C(routeBlocks))
					sr.StoreIdx(sr.Param(1), sr.MulI(slot, 8), 8, i)
				}, nil)
			})
		}
		// Mark chosen corridor cells in the private grid (not initializing:
		// loads preceded them; a handful of tracked blocks).
		sr.ForI(6, func(i ir.Reg) {
			idx := sr.Mod(sr.Add(besti, sr.MulI(i, 8)), sr.Param(2))
			old := sr.LoadIdx(sr.Param(0), idx, 8)
			sr.StoreIdx(sr.Param(0), idx, 8, sr.Sub(sr.C(0), sr.AddI(old, 1)))
		})
		sr.Ret(besti)
	}

	w := newFn(b.ThreadBody("worker", 1))
	tid := w.Param(0)
	myGrid := w.MallocI(gridWords * 8)
	routeBuf := w.MallocI(routeBlocks * 64)
	grid := w.GlobalAddr("grid")
	nReg := w.C(gridWords)

	w.ForI(pathsPerThread, func(p ir.Reg) {
		seed := w.Rand(nReg)
		// Stale snapshot + expansion outside the transaction (STAMP's
		// router tolerates staleness; validation happens in the TX).
		w.CallVoid("copyGrid", myGrid, grid, nReg)
		w.CallVoid("expand", myGrid, nReg, w.AddI(seed, 1))

		w.TxBegin()
		start := w.Call("selectRoute", myGrid, routeBuf, nReg, seed)
		// Validated write-back: re-read each shared cell, claim it if free.
		// A route crosses grid rows, so consecutive path cells land one
		// cache block apart.
		base := w.Mod(start, w.C(gridWords-pathLen*8))
		w.ForI(pathLen, func(i ir.Reg) {
			cell := w.Add(base, w.MulI(i, 8))
			cur := w.LoadIdx(grid, cell, 8)
			free := w.Cmp(ir.CmpEQ, cur, w.C(0))
			w.If(free, func() {
				mark := w.AddI(w.MulI(tid, 1000), 1)
				w.StoreIdx(grid, cell, 8, mark)
			}, nil)
		})
		w.TxEnd()
	})
	w.FreeI(myGrid, gridWords*8)
	w.FreeI(routeBuf, routeBlocks*64)
	w.RetVoid()

	buildMain(b, int64(threads), func(m *fn) {
		g := m.GlobalAddr("grid")
		m.ForI(gridWords, func(i ir.Reg) {
			m.StoreIdx(g, i, 8, m.C(0))
		})
	})
	return b.M
}
