package workloads

import "hintm/internal/ir"

// ssca2: the graph-construction kernel of SSCA#2. Threads transactionally
// append random edges into fixed-capacity per-node adjacency arrays.
//
// Paper-relevant property: tiny transactions (a count word plus one slot),
// conflicts only when two threads pick the same node, no capacity pressure
// (Fig. 1's "never exceed capacity" pair together with kmeans).
func init() {
	register(&Spec{
		Name:           "ssca2",
		DefaultThreads: 8,
		Description:    "graph construction; tiny TXs, conflicts on node counters",
		Build:          buildSSCA2,
	})
}

const ssca2Cap = 8 // adjacency slots per node

func buildSSCA2(threads int, scale Scale) *ir.Module {
	nodes := scale.pick(128, 1024, 4096)
	edgesPerThread := scale.pick(64, 32768, 40960)

	b := ir.NewBuilder("ssca2")
	b.GlobalPageAligned("counts", nodes)
	b.GlobalPageAligned("adj", nodes*ssca2Cap)

	w := newFn(b.ThreadBody("worker", 1))
	counts := w.GlobalAddr("counts")
	adj := w.GlobalAddr("adj")
	nodesReg := w.C(nodes)

	w.ForI(edgesPerThread, func(i ir.Reg) {
		u := w.Rand(nodesReg)
		v := w.Rand(nodesReg)
		w.TxBegin()
		c := w.LoadIdx(counts, u, 8)
		hasRoom := w.Cmp(ir.CmpLT, c, w.C(ssca2Cap))
		w.If(hasRoom, func() {
			slot := w.Add(w.MulI(u, ssca2Cap), c)
			w.StoreIdx(adj, slot, 8, v)
			w.StoreIdx(counts, u, 8, w.AddI(c, 1))
		}, nil)
		w.TxEnd()
	})
	w.RetVoid()

	buildMain(b, int64(threads), func(m *fn) {
		counts := m.GlobalAddr("counts")
		m.ForI(nodes, func(i ir.Reg) {
			m.StoreIdx(counts, i, 8, m.C(0))
		})
	})
	return b.M
}
