package workloads

import (
	"fmt"
	"sort"

	"hintm/internal/ir"
)

// Spec describes one benchmark in the suite.
type Spec struct {
	Name string
	// DefaultThreads follows the paper: 4 for genome and yada (poor
	// scalability beyond), 8 for everything else.
	DefaultThreads int
	// Build constructs the TIR module for the given thread count and scale.
	Build func(threads int, scale Scale) *ir.Module
	// Description summarizes the kernel and the paper-relevant property it
	// reproduces.
	Description string
	// Extra marks workloads beyond the paper's suite (TM microbenchmarks);
	// they are excluded from the paper-figure sweeps.
	Extra bool
}

var registry = map[string]*Spec{}

func register(s *Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workloads: duplicate " + s.Name)
	}
	registry[s.Name] = s
}

// All returns the paper's workload suite, sorted by name.
func All() []*Spec {
	out := make([]*Spec, 0, len(registry))
	for _, s := range registry {
		if !s.Extra {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllWithExtras returns every registered workload including the
// microbenchmarks.
func AllWithExtras() []*Spec {
	out := make([]*Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted workload names.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// ByName looks a workload up.
func ByName(name string) (*Spec, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return s, nil
}

// BuildDefault builds the module at the paper's thread count.
func (s *Spec) BuildDefault(scale Scale) *ir.Module {
	return s.Build(s.DefaultThreads, scale)
}
