package workloads

import "hintm/internal/ir"

// TPC-C's two most prevalent queries as transactional kernels (paper §V):
// tpcc-no (new_order) and tpcc-p (payment), over shared warehouse /
// district / customer / stock / item tables.
//
// Paper-relevant properties:
//   - tpcc-no: medium transactions building an order: district sequence
//     update, per-item stock updates, order lines staged in a *compact*
//     stack buffer the compiler proves safe (~18% of loads) — but with high
//     spatio-temporal locality, so removing them saves few tracking entries
//     and capacity aborts barely drop (the paper's locality observation);
//   - tpcc-p: small, conflict-dominated transactions on the hot warehouse
//     row (~85% of aborts are conflicts with or without HinTM); a 15%
//     by-name path scans many customer blocks and supplies the small
//     capacity-abort population whose removal still buys ~16% speedup.
func init() {
	register(&Spec{
		Name:           "tpcc-no",
		DefaultThreads: 8,
		Description:    "TPC-C new_order; staged order lines, stock updates",
		Build:          buildTpccNO,
	})
	register(&Spec{
		Name:           "tpcc-p",
		DefaultThreads: 8,
		Description:    "TPC-C payment; hot warehouse row, occasional name scans",
		Build:          buildTpccP,
	})
}

const (
	tpccDistricts = 10
	tpccRowStride = 64 // one block per table row
)

// declareTpccTables declares the shared tables both queries use.
func declareTpccTables(b *ir.Builder, customers, items int64) {
	b.Global("warehouse", 8)                          // one hot row
	b.GlobalPageAligned("district", tpccDistricts*8)  // 1 block per row
	b.GlobalPageAligned("customer", customers*8)      // 1 block per row
	b.GlobalPageAligned("stock", items*8)             // 1 block per row
	b.GlobalPageAligned("item", items*8)              // catalog
	b.GlobalPageAligned("orders", tpccDistricts*1024) // order-line areas
	b.Global("priceUpdateReq", 1)
}

func tpccSetup(m *fn, customers, items int64) {
	for _, g := range []struct {
		name string
		rows int64
	}{{"district", tpccDistricts}, {"customer", customers}, {"stock", items}, {"item", items}} {
		base := m.GlobalAddr(g.name)
		m.ForI(g.rows, func(i ir.Reg) {
			m.StoreIdx(base, i, tpccRowStride, m.AddI(m.RandI(500), 1))
		})
	}
	wh := m.GlobalAddr("warehouse")
	m.Store(wh, 0, m.C(1000))
}

func buildTpccNO(threads int, scale Scale) *ir.Module {
	customers := scale.pick(256, 1024, 4096)
	items := scale.pick(1024, 8192, 16384)
	txPerThread := scale.pick(6, 192, 224)
	maxLines := scale.pick(24, 32, 38)

	b := ir.NewBuilder("tpcc-no")
	declareTpccTables(b, customers, items)

	w := newFn(b.ThreadBody("worker", 1))
	wh := w.GlobalAddr("warehouse")
	district := w.GlobalAddr("district")
	stock := w.GlobalAddr("stock")
	item := w.GlobalAddr("item")
	orders := w.GlobalAddr("orders")
	priceReq := w.GlobalAddr("priceUpdateReq")

	// Compact staging buffer: two blocks hold all order lines, so the
	// statically safe accesses exhibit the high locality the paper reports.
	staging := w.Alloca(16)

	w.ForI(txPerThread, func(txi ir.Reg) {
		did := w.RandI(tpccDistricts)
		nLines := w.AddI(w.RandI(maxLines-4), 4)
		w.TxBegin()
		// Clear staging (statically safe initializing stores). One defining
		// store per block satisfies the classifier's object-granular
		// initialization check without inflating the safe-access share.
		w.DoFor(w.C(2), func(i ir.Reg) {
			w.StoreIdx(staging, w.MulI(i, 8), 8, w.C(0))
		})
		// Per order line: catalog price (practically read-only pages),
		// stock decrement, stage the line amount. The hot district row is
		// touched late (below) to keep its conflict window short.
		total := w.Mov(w.C(0))
		req := w.Load(priceReq, 0)
		_ = req
		update := w.Cmp(ir.CmpEQ, w.RandI(160), w.C(0))
		w.For(nLines, func(l ir.Reg) {
			it := w.RandI(items)
			// Item records span four words (id, price, tax class, stock ref)
			// within one block.
			rowAddr := w.Idx(item, it, tpccRowStride)
			price := w.Load(rowAddr, 0)
			price = w.Add(price, w.Load(rowAddr, 8))
			price = w.Add(price, w.Load(rowAddr, 16))
			price = w.Add(price, w.Load(rowAddr, 24))
			// Conditional price refresh defeats static RO classification
			// of the catalog (never fires at runtime).
			w.If(update, func() {
				w.Store(rowAddr, 8, price)
			}, nil)
			qty := w.LoadIdx(stock, it, tpccRowStride)
			w.StoreIdx(stock, it, tpccRowStride, w.Sub(qty, w.C(1)))
			slot := w.Mod(l, w.C(16))
			w.StoreIdx(staging, slot, 8, price)
			w.MovTo(total, w.Add(total, price))
		})
		// Read warehouse tax, bump the district sequence number, then write
		// order lines out from staging (safe loads, high locality).
		tax := w.Load(wh, 0)
		dseq := w.LoadIdx(district, did, tpccRowStride)
		w.StoreIdx(district, did, tpccRowStride, w.AddI(dseq, 1))
		obase := w.Idx(orders, w.MulI(did, 1024), 8)
		w.For(nLines, func(l ir.Reg) {
			slot := w.Mod(l, w.C(16))
			amt := w.LoadIdx(staging, slot, 8)
			pos := w.Mod(w.Add(dseq, l), w.C(1024))
			w.StoreIdx(obase, pos, 8, w.Add(amt, tax))
		})
		w.TxEnd()
	})
	w.RetVoid()

	buildMain(b, int64(threads), func(m *fn) { tpccSetup(m, customers, items) })
	return b.M
}

func buildTpccP(threads int, scale Scale) *ir.Module {
	customers := scale.pick(256, 1024, 4096)
	items := scale.pick(64, 256, 512)
	txPerThread := scale.pick(10, 256, 320)
	scanLo := scale.pick(48, 40, 56)   // min blocks scanned by-name
	scanSpan := scale.pick(32, 48, 64) // extra random blocks

	b := ir.NewBuilder("tpcc-p")
	declareTpccTables(b, customers, items)

	w := newFn(b.ThreadBody("worker", 1))
	wh := w.GlobalAddr("warehouse")
	district := w.GlobalAddr("district")
	customer := w.GlobalAddr("customer")

	// Name-scan scratch: matched candidates land one per block, so the few
	// statically safe loads each free a whole tracking entry.
	scratch := w.Alloca(12 * 8)

	w.ForI(txPerThread, func(txi ir.Reg) {
		did := w.RandI(tpccDistricts)
		amount := w.AddI(w.RandI(500), 1)
		byName := w.Cmp(ir.CmpLT, w.RandI(100), w.C(15)) // 15% by name
		cid := w.Mov(w.RandI(customers))

		w.TxBegin()
		w.If(byName, func() {
			// Scan customers by last name: a long read run plus a small
			// statically-safe candidate list.
			w.DoFor(w.C(2), func(i ir.Reg) {
				w.StoreIdx(scratch, w.MulI(i, 8), 8, w.C(0))
			})
			scanBlocks := w.Add(w.C(scanLo), w.RandI(scanSpan))
			start := w.RandI(customers - scanLo - scanSpan)
			nMatch := w.Mov(w.C(0))
			w.For(scanBlocks, func(i ir.Reg) {
				c := w.LoadIdx(customer, w.Add(start, i), tpccRowStride)
				match := w.Cmp(ir.CmpEQ, w.Mod(c, w.C(11)), w.C(0))
				w.If(match, func() {
					room := w.Cmp(ir.CmpLT, nMatch, w.C(12))
					w.If(room, func() {
						w.StoreIdx(scratch, w.MulI(nMatch, 8), 8, w.Add(start, i))
						w.MovTo(nMatch, w.AddI(nMatch, 1))
					}, nil)
				}, nil)
			})
			// Middle candidate (safe load) becomes the customer id.
			mid := w.Mod(w.Bin(ir.BinShr, nMatch, w.C(1)), w.C(12))
			chosen := w.LoadIdx(scratch, w.MulI(mid, 8), 8)
			picked := w.Cmp(ir.CmpGT, nMatch, w.C(0))
			w.If(picked, func() { w.MovTo(cid, chosen) }, nil)
		}, nil)

		bal := w.LoadIdx(customer, cid, tpccRowStride)
		w.StoreIdx(customer, cid, tpccRowStride, w.Sub(bal, amount))
		// Hot rows last (the 85%-conflict source): warehouse and district
		// year-to-date totals.
		ytd := w.Load(wh, 0)
		w.Store(wh, 0, w.Add(ytd, amount))
		dytd := w.LoadIdx(district, did, tpccRowStride)
		w.StoreIdx(district, did, tpccRowStride, w.Add(dytd, amount))
		w.TxEnd()
	})
	w.RetVoid()

	buildMain(b, int64(threads), func(m *fn) { tpccSetup(m, customers, items) })
	return b.M
}
