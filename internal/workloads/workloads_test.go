package workloads

import (
	"context"
	"testing"

	"hintm/internal/classify"
	"hintm/internal/htm"
	"hintm/internal/ir"
	"hintm/internal/sim"
)

// runSmall builds, classifies, and simulates a workload at Small scale.
func runSmall(t *testing.T, name string, cfg sim.Config) (*classify.Report, *sim.Result) {
	t.Helper()
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	threads := spec.DefaultThreads
	if threads > cfg.Contexts() {
		threads = cfg.Contexts()
	}
	mod := spec.Build(threads, Small)
	rep, err := classify.Run(mod)
	if err != nil {
		t.Fatalf("%s classify: %v", name, err)
	}
	m, err := sim.New(cfg, mod)
	if err != nil {
		t.Fatalf("%s sim.New: %v", name, err)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatalf("%s run: %v", name, err)
	}
	return rep, res
}

func TestAllWorkloadsBuildVerifyAndRun(t *testing.T) {
	if len(All()) != 10 {
		t.Fatalf("expected 10 workloads, have %d: %v", len(All()), Names())
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			_, res := runSmall(t, spec.Name, sim.DefaultConfig())
			if res.Commits+res.FallbackCommits == 0 {
				t.Fatalf("%s committed nothing: %v", spec.Name, res)
			}
			if res.Cycles <= 0 {
				t.Fatalf("%s has no cycles", spec.Name)
			}
		})
	}
}

func TestAllScalesBuild(t *testing.T) {
	for _, spec := range All() {
		for _, scale := range []Scale{Small, Medium, Large} {
			mod := spec.BuildDefault(scale)
			if err := mod.Verify(); err != nil {
				t.Errorf("%s@%v: %v", spec.Name, scale, err)
			}
		}
	}
}

func TestTinyTxWorkloadsNoCapacityAborts(t *testing.T) {
	for _, name := range []string{"kmeans", "ssca2"} {
		_, res := runSmall(t, name, sim.DefaultConfig())
		if res.Aborts[htm.AbortCapacity] != 0 {
			t.Errorf("%s: tiny TXs must not capacity-abort: %v", name, res)
		}
	}
}

func TestCapacityBoundWorkloadsAbortAtBaseline(t *testing.T) {
	for _, name := range []string{"labyrinth", "bayes", "yada", "genome"} {
		_, res := runSmall(t, name, sim.DefaultConfig())
		if res.Aborts[htm.AbortCapacity] == 0 {
			t.Errorf("%s: expected baseline capacity aborts: %v", name, res)
		}
	}
}

func TestLabyrinthStaticClassificationStrong(t *testing.T) {
	spec, _ := ByName("labyrinth")
	mod := spec.Build(8, Small)
	rep, err := classify.Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicated == 0 {
		t.Fatalf("labyrinth should replicate copyGrid/expand: %v", rep)
	}
	if rep.SafeTxStores == 0 || rep.SafeTxLoads == 0 {
		t.Fatalf("labyrinth static marks missing: %v", rep)
	}

	// HinTM-st must eliminate most capacity aborts (paper: ~80%).
	cfgBase := sim.DefaultConfig()
	_, base := runSmall(t, "labyrinth", cfgBase)
	cfgSt := sim.DefaultConfig()
	cfgSt.Hints = sim.HintStatic
	_, st := runSmall(t, "labyrinth", cfgSt)
	if st.Aborts[htm.AbortCapacity]*2 >= base.Aborts[htm.AbortCapacity] {
		t.Errorf("HinTM-st capacity aborts %d vs baseline %d: expected >50%% cut",
			st.Aborts[htm.AbortCapacity], base.Aborts[htm.AbortCapacity])
	}
	if st.Cycles >= base.Cycles {
		t.Errorf("HinTM-st slower than baseline: %d vs %d", st.Cycles, base.Cycles)
	}
}

func TestDynOnlyWorkloads(t *testing.T) {
	// genome/intruder/yada: static must find (almost) nothing; dynamic
	// should mark plenty of reads safe.
	for _, name := range []string{"genome", "intruder"} {
		spec, _ := ByName(name)
		mod := spec.Build(spec.DefaultThreads, Small)
		rep, err := classify.Run(mod)
		if err != nil {
			t.Fatal(err)
		}
		if rep.SafeTxLoads+rep.SafeTxStores > rep.TxLoads/10 {
			t.Errorf("%s: static classification found too much: %v", name, rep)
		}
	}

	cfgDyn := sim.DefaultConfig()
	cfgDyn.Hints = sim.HintDynamic
	for _, name := range []string{"genome", "intruder", "bayes"} {
		_, res := runSmall(t, name, cfgDyn)
		if res.DynSafeAccesses == 0 {
			t.Errorf("%s: dynamic classification marked nothing", name)
		}
	}
}

func TestGenomeDynReducesCapacityAborts(t *testing.T) {
	_, base := runSmall(t, "genome", sim.DefaultConfig())
	cfgDyn := sim.DefaultConfig()
	cfgDyn.Hints = sim.HintDynamic
	_, dyn := runSmall(t, "genome", cfgDyn)
	if dyn.Aborts[htm.AbortCapacity] >= base.Aborts[htm.AbortCapacity] {
		t.Errorf("genome dyn: capacity %d vs baseline %d",
			dyn.Aborts[htm.AbortCapacity], base.Aborts[htm.AbortCapacity])
	}
}

func TestBayesDynStrong(t *testing.T) {
	_, base := runSmall(t, "bayes", sim.DefaultConfig())
	cfgFull := sim.DefaultConfig()
	cfgFull.Hints = sim.HintFull
	_, full := runSmall(t, "bayes", cfgFull)
	if full.Aborts[htm.AbortCapacity]*2 >= base.Aborts[htm.AbortCapacity] {
		t.Errorf("bayes HinTM: capacity %d vs baseline %d",
			full.Aborts[htm.AbortCapacity], base.Aborts[htm.AbortCapacity])
	}
}

func TestTpccPConflictDominated(t *testing.T) {
	_, res := runSmall(t, "tpcc-p", sim.DefaultConfig())
	conflicts := res.Aborts[htm.AbortConflict]
	capacity := res.Aborts[htm.AbortCapacity]
	if conflicts == 0 {
		t.Fatalf("tpcc-p saw no conflicts: %v", res)
	}
	if capacity > conflicts {
		t.Errorf("tpcc-p should be conflict-dominated: conflicts=%d capacity=%d",
			conflicts, capacity)
	}
}

func TestTpccNoStaticStagingSafe(t *testing.T) {
	spec, _ := ByName("tpcc-no")
	mod := spec.Build(8, Small)
	rep, err := classify.Run(mod)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SafeTxLoads == 0 || rep.SafeTxStores == 0 {
		t.Fatalf("tpcc-no staging should be statically safe: %v", rep)
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
	if s, err := ByName("kmeans"); err != nil || s.Name != "kmeans" {
		t.Fatalf("ByName(kmeans): %v %v", s, err)
	}
}

func TestPaperThreadCounts(t *testing.T) {
	for _, name := range []string{"genome", "yada"} {
		s, _ := ByName(name)
		if s.DefaultThreads != 4 {
			t.Errorf("%s threads = %d, want 4 (paper §V)", name, s.DefaultThreads)
		}
	}
	for _, name := range []string{"kmeans", "labyrinth", "vacation", "tpcc-p"} {
		s, _ := ByName(name)
		if s.DefaultThreads != 8 {
			t.Errorf("%s threads = %d, want 8", name, s.DefaultThreads)
		}
	}
}

func TestScaleString(t *testing.T) {
	for _, s := range []Scale{Small, Medium, Large} {
		if s.String() == "" {
			t.Error("empty scale name")
		}
	}
}

// TestTextualRoundTrip: every workload module (before and after
// classification) must survive print → parse → print exactly.
func TestTextualRoundTrip(t *testing.T) {
	for _, spec := range All() {
		mod := spec.BuildDefault(Small)
		text := mod.String()
		parsed, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("%s: parse: %v", spec.Name, err)
		}
		if parsed.String() != text {
			t.Fatalf("%s: round trip differs", spec.Name)
		}
		if _, err := classify.Run(mod); err != nil {
			t.Fatal(err)
		}
		text2 := mod.String()
		parsed2, err := ir.Parse(text2)
		if err != nil {
			t.Fatalf("%s: parse classified: %v", spec.Name, err)
		}
		if parsed2.String() != text2 {
			t.Fatalf("%s: classified round trip differs", spec.Name)
		}
	}
}

// --- intset microbenchmarks (Extra workloads) ---

func TestExtraWorkloadsExcludedFromPaperSuite(t *testing.T) {
	if len(All()) != 10 {
		t.Fatalf("paper suite = %d workloads, want 10", len(All()))
	}
	if len(AllWithExtras()) != 12 {
		t.Fatalf("with extras = %d workloads, want 12", len(AllWithExtras()))
	}
	for _, s := range All() {
		if s.Extra {
			t.Errorf("%s marked Extra but in paper suite", s.Name)
		}
	}
}

func TestIntsetLLIsHinTMWorstCase(t *testing.T) {
	// Pointer chasing over shared read-write nodes: hints cannot reduce the
	// footprint, so capacity aborts persist — but InfCap eliminates them.
	_, base := runSmall(t, "intset-ll", sim.DefaultConfig())
	if base.Aborts[htm.AbortCapacity] == 0 {
		t.Fatalf("intset-ll baseline should capacity-abort: %v", base)
	}
	cfgFull := sim.DefaultConfig()
	cfgFull.Hints = sim.HintFull
	_, full := runSmall(t, "intset-ll", cfgFull)
	red := 1 - float64(full.Aborts[htm.AbortCapacity])/float64(base.Aborts[htm.AbortCapacity])
	if red > 0.5 {
		t.Errorf("hints should NOT rescue the shared linked list: reduction %.0f%%", red*100)
	}
	cfgInf := sim.DefaultConfig()
	cfgInf.HTM = sim.HTMInfCap
	_, inf := runSmall(t, "intset-ll", cfgInf)
	if inf.Aborts[htm.AbortCapacity] != 0 {
		t.Fatalf("InfCap must not capacity-abort: %v", inf)
	}
	if inf.Cycles >= base.Cycles {
		t.Errorf("InfCap should beat P8: %d vs %d", inf.Cycles, base.Cycles)
	}
}

func TestIntsetHashTinyTxs(t *testing.T) {
	_, res := runSmall(t, "intset-hash", sim.DefaultConfig())
	if res.Aborts[htm.AbortCapacity] != 0 {
		t.Fatalf("intset-hash must not capacity-abort: %v", res)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
}
